// Package control exposes a SwitchFlow simulation over HTTP/JSON — the
// model-submission service the paper sketches as future work ("this
// implementation can be improved to employ the gRPC interface for model
// submission, in a way similar to TF serving", §4). Clients submit jobs,
// advance virtual time, and read per-job and per-device statistics.
//
// Endpoints:
//
//	GET  /v1/status          simulation time, GPUs, scheduler counters
//	GET  /v1/models          the model zoo
//	GET  /v1/jobs            all jobs with stats
//	POST /v1/jobs            submit a job (JobRequest) -> JobInfo
//	GET  /v1/jobs/{id}       one job
//	DELETE /v1/jobs/{id}     stop a job
//	POST /v1/jobs/{id}/resize  grow/shrink an elastic job (ResizeRequest)
//	POST /v1/jobs/{id}/rebind  move one virtual node (RebindRequest)
//	POST /v1/groups          submit a shared-input group ([]JobRequest)
//	POST /v1/gpus/{gpu}/drain    vacate a GPU (elastic jobs rebind, others migrate)
//	POST /v1/gpus/{gpu}/undrain  make a drained GPU placeable again
//	POST /v1/advance         advance virtual time (AdvanceRequest)
//	GET  /v1/trace           Chrome trace-event JSON of the recorded window
//	GET  /v1/metrics         observability-spine event counts + aggregates
package control

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"switchflow"
	"switchflow/internal/obs"
)

// JobRequest is the submission payload.
type JobRequest struct {
	Name         string `json:"name"`
	Model        string `json:"model"`
	Batch        int    `json:"batch"`
	Train        bool   `json:"train"`
	Priority     int    `json:"priority"`
	GPU          int    `json:"gpu"`
	FallbackGPUs []int  `json:"fallbackGpus,omitempty"`
	FallbackCPU  bool   `json:"fallbackCpu,omitempty"`
	ServeEveryMS int    `json:"serveEveryMillis,omitempty"`
	ClosedLoop   bool   `json:"closedLoop,omitempty"`
	Saturated    bool   `json:"saturated,omitempty"`
	// PoissonArrivals draws exponential inter-arrival times with mean
	// serveEveryMillis, seeded by arrivalSeed.
	PoissonArrivals bool  `json:"poissonArrivals,omitempty"`
	ArrivalSeed     int64 `json:"arrivalSeed,omitempty"`
	// SLOMillis sets the serving latency objective; admission control
	// sheds requests whose projected queueing delay exceeds it.
	SLOMillis float64 `json:"sloMillis,omitempty"`
	// MaxBatch enables dynamic micro-batching up to this many requests
	// per compute launch; BatchWaitMillis bounds how long a sub-target
	// batch may wait for more requests.
	MaxBatch        int     `json:"maxBatch,omitempty"`
	BatchWaitMillis float64 `json:"batchWaitMillis,omitempty"`
	// VNodes requests elastic virtual-node placement: the batch splits
	// across these GPUs and the binding can change at runtime via the
	// resize/rebind/drain endpoints. When set, the gpu/fallback fields
	// above are ignored in favour of the placement (vnodes[0] is the
	// primary, fallbackGpus/fallbackCpu become the placement fallbacks).
	VNodes []int `json:"vnodes,omitempty"`
	// Gang makes an elastic training job a synchronous data-parallel gang:
	// one replica per virtual node, meeting at a topology-priced ring
	// all-reduce step barrier; the scheduler suspends and resumes the gang
	// as one unit. Width comes from replicas (consecutive GPUs starting at
	// gpu) or an explicit vnodes list.
	Gang bool `json:"gang,omitempty"`
	// Replicas is the gang width when vnodes is not set.
	Replicas int `json:"replicas,omitempty"`
}

// JobInfo is the per-job status payload.
type JobInfo struct {
	ID         int     `json:"id"`
	Name       string  `json:"name"`
	Model      string  `json:"model"`
	Device     string  `json:"device"`
	Iterations int     `json:"iterations"`
	Requests   int     `json:"requests"`
	P95Millis  float64 `json:"p95Millis"`
	P99Millis  float64 `json:"p99Millis"`
	// Serving request accounting: offered arrivals, admission-control
	// sheds, served completions, SLO-met completions, micro-batches
	// formed, and the derived attainment and mean batch size.
	Offered          int     `json:"offered,omitempty"`
	Shed             int     `json:"shed,omitempty"`
	Served           int     `json:"served,omitempty"`
	SLOMet           int     `json:"sloMet,omitempty"`
	Batches          int     `json:"batches,omitempty"`
	SLOAttainmentPct float64 `json:"sloAttainmentPct,omitempty"`
	MeanBatch        float64 `json:"meanBatch,omitempty"`
	// Elastic placement: virtual-node count and current binding (empty
	// for legacy single-device jobs), plus the restart counter that the
	// elastic path keeps at zero.
	VNodes   int    `json:"vnodes,omitempty"`
	Binding  string `json:"binding,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	// Gang reports a synchronous data-parallel gang job (replicas meet at
	// a ring all-reduce barrier and preempt/resume as one unit).
	Gang bool `json:"gang,omitempty"`
	Crashed  bool   `json:"crashed"`
	Error    string `json:"error,omitempty"`
}

// StatusInfo is the simulation-wide status payload.
type StatusInfo struct {
	Machine      string    `json:"machine"`
	NowMillis    float64   `json:"nowMillis"`
	GPUs         []GPUInfo `json:"gpus"`
	Jobs         int       `json:"jobs"`
	Preemptions  int       `json:"preemptions"`
	Migrations   int       `json:"migrations"`
	GrantP95Usec float64   `json:"grantP95Micros"`
	// Aggregate serving counters across all jobs.
	OfferedRequests  int     `json:"offeredRequests"`
	ShedRequests     int     `json:"shedRequests"`
	SLOAttainmentPct float64 `json:"sloAttainmentPct"`
}

// GPUInfo is per-device status.
type GPUInfo struct {
	Index      int     `json:"index"`
	BusyMillis float64 `json:"busyMillis"`
	MemUsed    int64   `json:"memUsedBytes"`
}

// ResizeRequest changes an elastic job's virtual-node count; the split
// is re-priced across the job's current devices (growing adds GPUs).
type ResizeRequest struct {
	VNodes int `json:"vnodes"`
}

// RebindRequest moves one virtual node to a different GPU at the next
// epoch-safe point.
type RebindRequest struct {
	VNode int `json:"vnode"`
	GPU   int `json:"gpu"`
}

// AdvanceRequest advances virtual time.
type AdvanceRequest struct {
	ForMillis int `json:"forMillis"`
}

// AdvanceResponse reports the new clock.
type AdvanceResponse struct {
	NowMillis float64 `json:"nowMillis"`
}

// Server serves one simulation. The simulation is single-threaded; every
// handler holds the mutex while touching it.
type Server struct {
	mu      sync.Mutex
	machine string
	sim     *switchflow.Simulation
	sched   *switchflow.SwitchFlowScheduler
	jobs    map[int]*jobEntry
	// order holds job ids in creation (= ascending) order, so listing is
	// O(jobs) instead of scanning the whole 1..nextID id space.
	order  []int
	nextID int
	// recorder captures the observability spine for /v1/trace and
	// /v1/metrics. It is bounded (a ring of the most recent events) so a
	// long-running server cannot grow without bound.
	recorder *obs.Recorder
}

// recorderCap bounds the trace window the server retains: enough for tens
// of seconds of simulated kernel activity, small enough to stay O(100MB)
// in the worst case.
const recorderCap = 1 << 18

type jobEntry struct {
	id    int
	model string
	job   *switchflow.Job
}

// NewServer creates a control server over a fresh simulation of the named
// machine ("v100", "2gpu", "tx2").
func NewServer(machine string) (*Server, error) {
	spec, err := machineSpec(machine)
	if err != nil {
		return nil, err
	}
	sim := switchflow.NewSimulation(spec)
	rec := obs.NewRecorder(recorderCap)
	// Everything except OpSched: per-operator dispatch is orders of
	// magnitude more voluminous than the rest of the spine combined and
	// would evict the decision events /v1/trace exists to show.
	sim.EventBus().Subscribe(rec,
		obs.KindKernelSpan, obs.KindLaunch, obs.KindPreempt, obs.KindResume,
		obs.KindMigrate, obs.KindBatchFuse, obs.KindAdmit, obs.KindShed,
		obs.KindServe, obs.KindFaultInject, obs.KindJobLost,
		obs.KindCheckpoint, obs.KindRestore, obs.KindPlace,
		obs.KindBind, obs.KindRebind, obs.KindResize)
	sched, err := sim.NewSwitchFlowScheduler()
	if err != nil {
		return nil, err
	}
	return &Server{
		machine:  spec.Name(),
		sim:      sim,
		sched:    sched,
		jobs:     make(map[int]*jobEntry),
		recorder: rec,
	}, nil
}

func machineSpec(name string) (switchflow.MachineSpec, error) {
	switch strings.ToLower(name) {
	case "v100", "":
		return switchflow.V100Server(), nil
	case "nvlink":
		return switchflow.NVLinkV100Server(), nil
	case "2gpu":
		return switchflow.TwoGPUServer(), nil
	case "tx2":
		return switchflow.JetsonTX2(), nil
	default:
		return switchflow.SingleGPU(name)
	}
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/status", s.handleStatus)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleStopJob)
	mux.HandleFunc("POST /v1/jobs/{id}/resize", s.handleResizeJob)
	mux.HandleFunc("POST /v1/jobs/{id}/rebind", s.handleRebindJob)
	mux.HandleFunc("POST /v1/groups", s.handleSubmitGroup)
	mux.HandleFunc("POST /v1/gpus/{gpu}/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/gpus/{gpu}/undrain", s.handleUndrain)
	mux.HandleFunc("POST /v1/advance", s.handleAdvance)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	return mux
}

// The handlers below all follow the same shape: a *Locked method takes
// s.mu, builds the response payload, and returns it; the handler writes
// the payload only after the lock is released. Writing to the
// ResponseWriter under s.mu would let one slow client stall the whole
// control plane (the write can block on the peer's TCP window), which
// the locksafe analyzer flags.

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statusLocked())
}

func (s *Server) statusLocked() StatusInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	status := StatusInfo{
		Machine:      s.machine,
		NowMillis:    s.sim.Now().Seconds() * 1e3,
		Jobs:         len(s.jobs),
		Preemptions:  s.sched.Preemptions(),
		Migrations:   s.sched.Migrations(),
		GrantP95Usec: float64(s.sched.PreemptionP95().Microseconds()),
	}
	var served, sloMet int
	for _, id := range s.order {
		st := s.jobs[id].job.ServingStats()
		status.OfferedRequests += st.Offered
		status.ShedRequests += st.Shed
		served += st.Served
		sloMet += st.SLOMet
	}
	if served > 0 {
		status.SLOAttainmentPct = 100 * float64(sloMet) / float64(served)
	}
	for i := 0; i < s.sim.GPUCount(); i++ {
		status.GPUs = append(status.GPUs, GPUInfo{
			Index:      i,
			BusyMillis: s.sim.GPUBusy(i).Seconds() * 1e3,
			MemUsed:    s.sim.GPUMemoryUsed(i),
		})
	}
	return status
}

func (s *Server) handleModels(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, switchflow.Models())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.listJobsLocked())
}

func (s *Server) listJobsLocked() []JobInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]JobInfo, 0, len(s.jobs))
	for _, id := range s.order {
		infos = append(infos, s.info(s.jobs[id]))
	}
	return infos
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	info, err := s.submitJobLocked(req)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) submitJobLocked(req JobRequest) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, err := s.sched.AddJob(toSpec(req))
	if err != nil {
		return JobInfo{}, err
	}
	return s.info(s.track(req.Model, job)), nil
}

func (s *Server) handleSubmitGroup(w http.ResponseWriter, r *http.Request) {
	var reqs []JobRequest
	if err := json.NewDecoder(r.Body).Decode(&reqs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	infos, err := s.submitGroupLocked(reqs)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, infos)
}

func (s *Server) submitGroupLocked(reqs []JobRequest) ([]JobInfo, error) {
	specs := make([]switchflow.JobSpec, len(reqs))
	for i, req := range reqs {
		specs[i] = toSpec(req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	group, err := s.sched.AddSharedGroup(specs)
	if err != nil {
		return nil, err
	}
	infos := make([]JobInfo, 0, len(reqs))
	for i, job := range group.Jobs() {
		infos = append(infos, s.info(s.track(reqs[i].Model, job)))
	}
	return infos, nil
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobInfoLocked(r.PathValue("id"), false)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleStopJob(w http.ResponseWriter, r *http.Request) {
	info, err := s.jobInfoLocked(r.PathValue("id"), true)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// jobInfoLocked resolves a job by its path id and returns its status,
// stopping it first when stop is set.
func (s *Server) jobInfoLocked(idText string, stop bool) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, err := s.lookup(idText)
	if err != nil {
		return JobInfo{}, err
	}
	if stop {
		s.sched.StopJob(entry.job)
	}
	return s.info(entry), nil
}

func (s *Server) handleResizeJob(w http.ResponseWriter, r *http.Request) {
	var req ResizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	info, err := s.resizeJobLocked(r.PathValue("id"), req)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) resizeJobLocked(idText string, req ResizeRequest) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, err := s.lookup(idText)
	if err != nil {
		return JobInfo{}, err
	}
	switch n := req.VNodes; {
	case n > entry.job.VNodes():
		err = s.sched.Grow(entry.job, n)
	case n < entry.job.VNodes():
		err = s.sched.Shrink(entry.job, n)
	}
	if err != nil {
		return JobInfo{}, err
	}
	return s.info(entry), nil
}

func (s *Server) handleRebindJob(w http.ResponseWriter, r *http.Request) {
	var req RebindRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	info, err := s.rebindJobLocked(r.PathValue("id"), req)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) rebindJobLocked(idText string, req RebindRequest) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entry, err := s.lookup(idText)
	if err != nil {
		return JobInfo{}, err
	}
	if err := s.sched.Rebind(entry.job, req.VNode, req.GPU); err != nil {
		return JobInfo{}, err
	}
	return s.info(entry), nil
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	status, err := s.drainLocked(r.PathValue("gpu"), true)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) handleUndrain(w http.ResponseWriter, r *http.Request) {
	status, err := s.drainLocked(r.PathValue("gpu"), false)
	if err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, status)
}

func (s *Server) drainLocked(gpuText string, drain bool) (StatusInfo, error) {
	gpu, err := strconv.Atoi(gpuText)
	if err != nil {
		return StatusInfo{}, fmt.Errorf("bad gpu index %q", gpuText)
	}
	s.mu.Lock()
	if drain {
		err = s.sched.Drain(gpu)
	} else {
		err = s.sched.Undrain(gpu)
	}
	s.mu.Unlock()
	if err != nil {
		return StatusInfo{}, err
	}
	return s.statusLocked(), nil
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req AdvanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.ForMillis <= 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("forMillis must be positive, got %d", req.ForMillis))
		return
	}
	writeJSON(w, http.StatusOK, s.advanceLocked(req))
}

func (s *Server) advanceLocked(req AdvanceRequest) AdvanceResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sim.RunFor(time.Duration(req.ForMillis) * time.Millisecond)
	return AdvanceResponse{NowMillis: s.sim.Now().Seconds() * 1e3}
}

// MetricsInfo is the /v1/metrics payload: spine-wide event accounting
// plus the scheduler's decision and fault aggregates.
type MetricsInfo struct {
	// Events is how many spine events the trace recorder currently holds;
	// DroppedEvents counts older events evicted by the bounded window.
	Events        int    `json:"events"`
	DroppedEvents uint64 `json:"droppedEvents"`
	// ByKind breaks the retained events down by event kind.
	ByKind map[string]int `json:"byKind"`
	// Scheduler decision counters and fault aggregates.
	Preemptions int                   `json:"preemptions"`
	Migrations  int                   `json:"migrations"`
	Faults      switchflow.FaultStats `json:"faults"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	events := s.traceEventsLocked()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = obs.WriteChrome(w, events)
}

func (s *Server) traceEventsLocked() []obs.Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recorder.Events()
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metricsLocked())
}

func (s *Server) metricsLocked() MetricsInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	events := s.recorder.Events()
	byKind := make(map[string]int)
	for _, e := range events {
		byKind[e.Kind.String()]++
	}
	return MetricsInfo{
		Events:        len(events),
		DroppedEvents: s.recorder.Dropped(),
		ByKind:        byKind,
		Preemptions:   s.sched.Preemptions(),
		Migrations:    s.sched.Migrations(),
		Faults:        s.sched.FaultStats(),
	}
}

func (s *Server) track(model string, job *switchflow.Job) *jobEntry {
	s.nextID++
	entry := &jobEntry{id: s.nextID, model: model, job: job}
	s.jobs[entry.id] = entry
	s.order = append(s.order, entry.id)
	return entry
}

func (s *Server) lookup(idText string) (*jobEntry, error) {
	id, err := strconv.Atoi(idText)
	if err != nil {
		return nil, fmt.Errorf("bad job id %q", idText)
	}
	entry, ok := s.jobs[id]
	if !ok {
		return nil, fmt.Errorf("job %d not found", id)
	}
	return entry, nil
}

func (s *Server) info(entry *jobEntry) JobInfo {
	info := jobInfo(entry.id, entry.model, entry.job)
	info.Device = s.sched.JobDeviceName(entry.job)
	return info
}

// jobInfo builds the wire payload for one job; the caller fills Device
// when a scheduler can name it.
func jobInfo(id int, model string, job *switchflow.Job) JobInfo {
	serving := job.ServingStats()
	info := JobInfo{
		ID:               id,
		Name:             job.Name(),
		Model:            model,
		Iterations:       job.Iterations(),
		Requests:         job.Requests(),
		P95Millis:        job.P95Latency().Seconds() * 1e3,
		P99Millis:        job.P99Latency().Seconds() * 1e3,
		Offered:          serving.Offered,
		Shed:             serving.Shed,
		Served:           serving.Served,
		SLOMet:           serving.SLOMet,
		Batches:          serving.Batches,
		SLOAttainmentPct: job.SLOAttainment(),
		MeanBatch:        job.MeanBatch(),
		Crashed:          job.Crashed(),
	}
	if job.Elastic() {
		info.VNodes = job.VNodes()
		info.Binding = job.Binding()
		info.Restarts = job.Restarts()
		info.Gang = job.Gang()
	}
	if err := job.Err(); err != nil {
		info.Error = err.Error()
	}
	return info
}

func toSpec(req JobRequest) switchflow.JobSpec {
	spec := switchflow.JobSpec{
		Name:            req.Name,
		Model:           req.Model,
		Batch:           req.Batch,
		Train:           req.Train,
		Priority:        req.Priority,
		ServeEvery:      time.Duration(req.ServeEveryMS) * time.Millisecond,
		ClosedLoop:      req.ClosedLoop,
		Saturated:       req.Saturated,
		PoissonArrivals: req.PoissonArrivals,
		ArrivalSeed:     req.ArrivalSeed,
		SLO:             time.Duration(req.SLOMillis * float64(time.Millisecond)),
		MaxBatch:        req.MaxBatch,
		BatchWait:       time.Duration(req.BatchWaitMillis * float64(time.Millisecond)),
		Gang:            req.Gang,
		Replicas:        req.Replicas,
	}
	if len(req.VNodes) > 0 {
		spec.Placement = switchflow.Placement{
			Device:    req.VNodes[0],
			Fallbacks: req.FallbackGPUs,
			AllowCPU:  req.FallbackCPU,
			VNodes:    req.VNodes,
		}
	} else {
		spec.GPU = req.GPU
		spec.FallbackGPUs = req.FallbackGPUs
		spec.FallbackCPU = req.FallbackCPU
	}
	return spec
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
