package control

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := NewServer("v100")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s %s: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func TestSubmitAdvanceAndQuery(t *testing.T) {
	ts := newTestServer(t)

	var created JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true, Priority: 1,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	if created.ID != 1 || created.Device != "gpu:0" {
		t.Fatalf("created = %+v", created)
	}

	var adv AdvanceResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 5000}, &adv); code != 200 {
		t.Fatalf("advance status = %d", code)
	}
	if adv.NowMillis != 5000 {
		t.Fatalf("NowMillis = %v, want 5000", adv.NowMillis)
	}

	var info JobInfo
	if code := doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID), nil, &info); code != 200 {
		t.Fatalf("get status = %d", code)
	}
	if info.Iterations < 5 {
		t.Fatalf("job made %d iterations in 5s of virtual time", info.Iterations)
	}

	var status StatusInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/status", nil, &status); code != 200 {
		t.Fatalf("status code = %d", code)
	}
	if status.Jobs != 1 || len(status.GPUs) != 4 {
		t.Fatalf("status = %+v", status)
	}
	if status.GPUs[0].BusyMillis == 0 {
		t.Fatal("gpu:0 reported idle despite training")
	}
}

func TestPreemptionVisibleOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "train", Model: "VGG16", Batch: 32, Train: true, Priority: 1,
	}, nil)
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)
	var serve JobInfo
	doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2, ClosedLoop: true,
	}, &serve)
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 10000}, nil)

	var status StatusInfo
	doJSON(t, "GET", ts.URL+"/v1/status", nil, &status)
	if status.Preemptions == 0 {
		t.Fatal("no preemptions visible")
	}
	var info JobInfo
	doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, serve.ID), nil, &info)
	if info.Requests == 0 || info.P95Millis == 0 {
		t.Fatalf("serving stats empty: %+v", info)
	}
	if info.P95Millis > 300 {
		t.Fatalf("p95 = %.1f ms under SwitchFlow", info.P95Millis)
	}
}

func TestStopJob(t *testing.T) {
	ts := newTestServer(t)
	var created JobInfo
	doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "train", Model: "MobileNetV2", Batch: 16, Train: true,
	}, &created)
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)
	if code := doJSON(t, "DELETE", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID), nil, nil); code != 200 {
		t.Fatalf("stop status = %d", code)
	}
	var before JobInfo
	doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID), nil, &before)
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 5000}, nil)
	var after JobInfo
	doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID), nil, &after)
	if after.Iterations > before.Iterations+2 {
		t.Fatalf("stopped job advanced %d -> %d", before.Iterations, after.Iterations)
	}
}

func TestGroupSubmission(t *testing.T) {
	ts := newTestServer(t)
	reqs := []JobRequest{
		{Name: "m0", Model: "ResNet50", Batch: 32, Saturated: true},
		{Name: "m1", Model: "ResNet50", Batch: 32, Saturated: true},
	}
	var infos []JobInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/groups", reqs, &infos); code != http.StatusCreated {
		t.Fatalf("group status = %d", code)
	}
	if len(infos) != 2 {
		t.Fatalf("group created %d jobs", len(infos))
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 10000}, nil)
	var listed []JobInfo
	doJSON(t, "GET", ts.URL+"/v1/jobs", nil, &listed)
	if len(listed) != 2 || listed[0].Iterations == 0 {
		t.Fatalf("group jobs: %+v", listed)
	}
	if diff := listed[0].Iterations - listed[1].Iterations; diff < -1 || diff > 1 {
		t.Fatalf("lockstep violated over HTTP: %+v", listed)
	}
}

func TestErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	var out map[string]string

	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{Name: "x", Model: "NoNet", Batch: 8}, &out); code != http.StatusConflict {
		t.Fatalf("unknown model status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/99", nil, &out); code != http.StatusNotFound {
		t.Fatalf("missing job status = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: -1}, &out); code != http.StatusBadRequest {
		t.Fatalf("bad advance status = %d", code)
	}
	var models []string
	if code := doJSON(t, "GET", ts.URL+"/v1/models", nil, &models); code != 200 || len(models) != 12 {
		t.Fatalf("models: %d %v", code, models)
	}
}

func TestBatchedServingOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	var created JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 1,
		ServeEveryMS: 10, SLOMillis: 500, MaxBatch: 8, BatchWaitMillis: 20,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 5000}, nil)

	var info JobInfo
	doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID), nil, &info)
	if info.Offered == 0 || info.Served == 0 || info.Batches == 0 {
		t.Fatalf("serving counters empty: %+v", info)
	}
	if info.Served+info.Shed > info.Offered {
		t.Fatalf("counters inconsistent: %+v", info)
	}
	if info.MeanBatch <= 1 {
		t.Fatalf("meanBatch = %.2f, want > 1 under a 100/s stream", info.MeanBatch)
	}
	if info.SLOAttainmentPct <= 0 || info.P99Millis < info.P95Millis {
		t.Fatalf("SLO/latency stats: %+v", info)
	}

	var status StatusInfo
	doJSON(t, "GET", ts.URL+"/v1/status", nil, &status)
	if status.OfferedRequests != info.Offered || status.ShedRequests != info.Shed {
		t.Fatalf("status aggregates %+v do not match job %+v", status, info)
	}
}

func TestPoissonArrivalsOverHTTP(t *testing.T) {
	ts := newTestServer(t)
	var created JobInfo
	doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "serve", Model: "MobileNetV2", Batch: 1, Priority: 1,
		ServeEveryMS: 10, PoissonArrivals: true, ArrivalSeed: 7,
	}, &created)
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)
	var info JobInfo
	doJSON(t, "GET", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID), nil, &info)
	if info.Offered < 120 || info.Offered > 300 {
		t.Fatalf("Poisson stream offered %d in 2s at mean 100/s", info.Offered)
	}
	// An exact-period stream would offer exactly 200.
	if info.Offered == 200 {
		t.Fatal("arrival count is exactly periodic; Poisson flag ignored")
	}
}

func TestHandlerErrorPaths(t *testing.T) {
	ts := newTestServer(t)
	post := func(path, body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/jobs", "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed job JSON status = %d", code)
	}
	if code := post("/v1/groups", "[{]"); code != http.StatusBadRequest {
		t.Errorf("malformed group JSON status = %d", code)
	}
	if code := post("/v1/advance", "nope"); code != http.StatusBadRequest {
		t.Errorf("malformed advance JSON status = %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 0}, nil); code != http.StatusBadRequest {
		t.Errorf("zero advance status = %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/jobs/banana", nil, nil); code != http.StatusNotFound {
		t.Errorf("non-numeric job id status = %d", code)
	}
	if code := doJSON(t, "DELETE", ts.URL+"/v1/jobs/42", nil, nil); code != http.StatusNotFound {
		t.Errorf("stop of missing job status = %d", code)
	}
	// A spec the facade rejects (batch wait without batching) surfaces as
	// a conflict, not a silent accept.
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "bad", Model: "ResNet50", Batch: 1, ServeEveryMS: 100, BatchWaitMillis: 5,
	}, nil); code != http.StatusConflict {
		t.Errorf("invalid batching spec status = %d", code)
	}
}

// TestConcurrentClients hammers the server from parallel goroutines; the
// per-server mutex must serialize every simulation touch (run under
// -race in CI).
func TestConcurrentClients(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
					Name: fmt.Sprintf("serve-%d-%d", i, k), Model: "MobileNetV2",
					Batch: 1, Priority: 1, ServeEveryMS: 50, MaxBatch: 4, BatchWaitMillis: 10,
				}, nil)
				doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 20}, nil)
				doJSON(t, "GET", ts.URL+"/v1/jobs", nil, nil)
				doJSON(t, "GET", ts.URL+"/v1/status", nil, nil)
			}
		}()
	}
	wg.Wait()
	var listed []JobInfo
	doJSON(t, "GET", ts.URL+"/v1/jobs", nil, &listed)
	if len(listed) != 40 {
		t.Fatalf("listed %d jobs after 40 submissions", len(listed))
	}
	for i, info := range listed {
		if info.ID != i+1 {
			t.Fatalf("listing out of id order at %d: %+v", i, info)
		}
	}
}

func TestNewServerMachines(t *testing.T) {
	for _, machine := range []string{"v100", "2gpu", "tx2", "GTX 1080 Ti"} {
		if _, err := NewServer(machine); err != nil {
			t.Errorf("NewServer(%q): %v", machine, err)
		}
	}
	if _, err := NewServer("TPUv4"); err == nil {
		t.Error("NewServer(TPUv4) accepted")
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	raw := `{
		"machine": "v100",
		"scheduler": "switchflow",
		"durationMillis": 5000,
		"jobs": [
			{"name": "train", "model": "ResNet50", "batch": 16, "train": true, "priority": 1},
			{"name": "serve", "model": "MobileNetV2", "batch": 1, "priority": 2, "closedLoop": true}
		]
	}`
	sc, err := ParseScenario(bytes.NewBufferString(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("got %d jobs", len(res.Jobs))
	}
	if res.Jobs[0].Iterations == 0 {
		t.Fatal("training made no progress")
	}
	if res.Jobs[1].Requests == 0 {
		t.Fatal("serving made no progress")
	}
	if res.Preemptions == 0 {
		t.Fatal("no preemptions in collocation scenario")
	}
}

func TestScenarioWithGroup(t *testing.T) {
	raw := `{
		"machine": "v100",
		"durationMillis": 10000,
		"groups": [[
			{"name": "m0", "model": "ResNet50", "batch": 32, "saturated": true},
			{"name": "m1", "model": "ResNet50", "batch": 32, "saturated": true}
		]]
	}`
	sc, err := ParseScenario(bytes.NewBufferString(raw))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 || res.Jobs[0].Iterations == 0 {
		t.Fatalf("group result: %+v", res.Jobs)
	}
	if diff := res.Jobs[0].Iterations - res.Jobs[1].Iterations; diff < -1 || diff > 1 {
		t.Fatalf("lockstep violated: %+v", res.Jobs)
	}
}

func TestScenarioValidation(t *testing.T) {
	if _, err := ParseScenario(bytes.NewBufferString(`{"durationMillis": 0, "jobs": []}`)); err == nil {
		t.Fatal("empty scenario accepted")
	}
	if _, err := ParseScenario(bytes.NewBufferString(`{"bogus": 1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
	sc := Scenario{Machine: "v100", Scheduler: "timeslice", DurationMillis: 100,
		Groups: [][]JobRequest{{{Name: "a", Model: "ResNet50", Batch: 8}}}}
	if _, err := RunScenario(sc); err == nil {
		t.Fatal("group under non-switchflow scheduler accepted")
	}
}

func TestTraceAndMetricsEndpoints(t *testing.T) {
	ts := newTestServer(t)

	// Two training jobs with a priority gap: the higher one preempts, so
	// the spine records decisions alongside kernel spans.
	for i, prio := range []int{0, 1} {
		var created JobInfo
		code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
			Name: fmt.Sprintf("train-%d", i), Model: "ResNet50", Batch: 16,
			Train: true, Priority: prio,
		}, &created)
		if code != http.StatusCreated {
			t.Fatalf("submit status = %d", code)
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil); code != 200 {
		t.Fatalf("advance status = %d", code)
	}

	var metrics MetricsInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	if metrics.Events == 0 {
		t.Fatal("metrics reports no recorded events after a 2s co-run")
	}
	if metrics.ByKind["KernelSpan"] == 0 {
		t.Fatalf("no kernel spans in metrics: %+v", metrics.ByKind)
	}
	if metrics.Preemptions == 0 || metrics.ByKind["Preempt"] == 0 {
		t.Fatalf("priority ladder produced no preemptions: %+v", metrics)
	}

	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("trace status = %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid chrome JSON: %v", err)
	}
	var spans, preempts int
	for _, e := range doc.TraceEvents {
		switch {
		case e.Ph == "X":
			spans++
		case e.Name == "Preempt":
			preempts++
		}
	}
	if spans == 0 || preempts == 0 {
		t.Fatalf("trace has %d spans and %d preempt instants, want both > 0", spans, preempts)
	}
}

func TestElasticLifecycleOverHTTP(t *testing.T) {
	ts := newTestServer(t)

	var created JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "train", Model: "ResNet50", Batch: 16, Train: true, Priority: 1,
		VNodes: []int{0},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	if created.VNodes != 1 || created.Binding == "" {
		t.Fatalf("created elastic job = %+v", created)
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)

	// Grow to two virtual nodes.
	var info JobInfo
	url := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID)
	if code := doJSON(t, "POST", url+"/resize", ResizeRequest{VNodes: 2}, &info); code != 200 {
		t.Fatalf("resize status = %d", code)
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)
	if code := doJSON(t, "GET", url, nil, &info); code != 200 {
		t.Fatalf("get status = %d", code)
	}
	if info.VNodes != 2 {
		t.Fatalf("after resize VNodes = %d, want 2; info = %+v", info.VNodes, info)
	}

	// Move the second virtual node to gpu:2 explicitly.
	if code := doJSON(t, "POST", url+"/rebind", RebindRequest{VNode: 1, GPU: 2}, &info); code != 200 {
		t.Fatalf("rebind status = %d", code)
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)

	// Drain gpu:0: the job must rebind off it without restarting.
	var status StatusInfo
	if code := doJSON(t, "POST", ts.URL+"/v1/gpus/0/drain", nil, &status); code != 200 {
		t.Fatalf("drain status = %d", code)
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 4000}, nil)
	if code := doJSON(t, "GET", url, nil, &info); code != 200 {
		t.Fatalf("get status = %d", code)
	}
	if info.Crashed || info.Restarts != 0 {
		t.Fatalf("drained elastic job = %+v, want alive with 0 restarts", info)
	}
	if strings.Contains(info.Binding, "gpu:0") {
		t.Fatalf("binding %q still uses drained gpu:0", info.Binding)
	}

	// Undrain and confirm the spine recorded the elastic decisions.
	if code := doJSON(t, "POST", ts.URL+"/v1/gpus/0/undrain", nil, &status); code != 200 {
		t.Fatalf("undrain status = %d", code)
	}
	var metrics MetricsInfo
	if code := doJSON(t, "GET", ts.URL+"/v1/metrics", nil, &metrics); code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	for _, kind := range []string{"Bind", "Rebind", "Resize"} {
		if metrics.ByKind[kind] == 0 {
			t.Fatalf("no %s events on the spine: %+v", kind, metrics.ByKind)
		}
	}

	// Error paths: resizing a legacy job and draining a bogus GPU.
	var legacy JobInfo
	doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "legacy", Model: "ResNet50", Batch: 16, Train: true, Priority: 1, GPU: 1,
	}, &legacy)
	legacyURL := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, legacy.ID)
	if code := doJSON(t, "POST", legacyURL+"/resize", ResizeRequest{VNodes: 2}, nil); code != http.StatusConflict {
		t.Fatalf("resize of legacy job status = %d, want %d", code, http.StatusConflict)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/gpus/99/drain", nil, nil); code != http.StatusConflict {
		t.Fatalf("drain of gpu:99 status = %d, want %d", code, http.StatusConflict)
	}
}

// TestGangJobOverHTTP submits a data-parallel gang on the NVLink
// machine and checks the wire surface: width materializes into vnodes,
// the info payload reports gang, and a bad gang spec is a 400.
func TestGangJobOverHTTP(t *testing.T) {
	s, err := NewServer("nvlink")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var created JobInfo
	code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "ddp", Model: "ResNet50", Batch: 16, Train: true, Priority: 1,
		Gang: true, Replicas: 2,
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	if !created.Gang || created.VNodes != 2 {
		t.Fatalf("created gang job = %+v, want gang with 2 vnodes", created)
	}
	doJSON(t, "POST", ts.URL+"/v1/advance", AdvanceRequest{ForMillis: 2000}, nil)

	var info JobInfo
	url := fmt.Sprintf("%s/v1/jobs/%d", ts.URL, created.ID)
	if code := doJSON(t, "GET", url, nil, &info); code != 200 {
		t.Fatalf("get status = %d", code)
	}
	if !info.Gang || info.Iterations == 0 || info.Crashed {
		t.Fatalf("gang job after 2s = %+v, want progressing gang", info)
	}

	// A one-replica gang is an invalid spec, rejected at the door with
	// the same status the other spec errors use.
	if code := doJSON(t, "POST", ts.URL+"/v1/jobs", JobRequest{
		Name: "thin", Model: "ResNet50", Batch: 16, Train: true, Gang: true, Replicas: 1,
	}, nil); code != http.StatusConflict {
		t.Fatalf("one-replica gang status = %d, want %d", code, http.StatusConflict)
	}
}
