package control

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"switchflow"
)

// Scenario is a declarative collocation experiment: a machine, a
// scheduler, a set of jobs (and optional shared-input groups), and a
// virtual-time window.
type Scenario struct {
	Machine        string         `json:"machine"`
	Scheduler      string         `json:"scheduler"`
	DurationMillis int            `json:"durationMillis"`
	Jobs           []JobRequest   `json:"jobs"`
	Groups         [][]JobRequest `json:"groups,omitempty"`
	// Traffic, when present, drives every non-training job with an
	// open-loop trace instead of the jobs' own arrival clocks (their
	// serveEvery/closedLoop/saturated settings are overridden).
	Traffic *TrafficRequest `json:"traffic,omitempty"`
}

// ScenarioResult reports per-job outcomes of a scenario run.
type ScenarioResult struct {
	Machine     string    `json:"machine"`
	Scheduler   string    `json:"scheduler"`
	Window      string    `json:"window"`
	Jobs        []JobInfo `json:"jobs"`
	Preemptions int       `json:"preemptions"`
	Migrations  int       `json:"migrations"`
	// TrafficOffered/TrafficAdmitted summarize the open-loop trace when
	// the scenario had a traffic block; the difference was shed at
	// admission.
	TrafficOffered  int `json:"trafficOffered,omitempty"`
	TrafficAdmitted int `json:"trafficAdmitted,omitempty"`
}

// ParseScenario decodes a scenario from JSON.
func ParseScenario(r io.Reader) (Scenario, error) {
	var sc Scenario
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return Scenario{}, fmt.Errorf("control: decode scenario: %w", err)
	}
	if sc.DurationMillis <= 0 {
		return Scenario{}, fmt.Errorf("control: scenario durationMillis must be positive")
	}
	if len(sc.Jobs) == 0 && len(sc.Groups) == 0 {
		return Scenario{}, fmt.Errorf("control: scenario has no jobs")
	}
	return sc, nil
}

// ToSpec converts the request to the facade's JobSpec.
func (r JobRequest) ToSpec() switchflow.JobSpec { return toSpec(r) }

// RunScenario executes the scenario in virtual time and returns the
// outcomes.
func RunScenario(sc Scenario) (ScenarioResult, error) {
	spec, err := machineSpec(sc.Machine)
	if err != nil {
		return ScenarioResult{}, err
	}
	sim := switchflow.NewSimulation(spec)

	var sched switchflow.Scheduler
	var sf *switchflow.SwitchFlowScheduler
	var policy switchflow.Policy
	switch sc.Scheduler {
	case "switchflow", "":
		policy = switchflow.PolicySwitchFlow
	case "threaded":
		policy = switchflow.PolicyThreadedTF
	case "timeslice":
		policy = switchflow.PolicyTimeSlice
	case "mps":
		policy = switchflow.PolicyMPS
	default:
		return ScenarioResult{}, fmt.Errorf("control: unknown scheduler %q", sc.Scheduler)
	}
	sched, err = sim.NewScheduler(policy)
	if err != nil {
		return ScenarioResult{}, err
	}
	if policy == switchflow.PolicySwitchFlow {
		sf = sched.(*switchflow.SwitchFlowScheduler)
	}

	// requestDriven rewrites a spec for trace-driven arrivals: the
	// traffic block owns the clock, so the job must sit idle between
	// Offer calls.
	requestDriven := func(req JobRequest) switchflow.JobSpec {
		s := req.ToSpec()
		if sc.Traffic != nil && !req.Train {
			s.ServeEvery = 0
			s.ClosedLoop = false
			s.Saturated = false
			s.PoissonArrivals = false
			s.RequestDriven = true
		}
		return s
	}

	type namedJob struct {
		model string
		job   *switchflow.Job
	}
	var jobs []namedJob
	var tenantNames []string
	var tenantJobs []*switchflow.Job
	for _, req := range sc.Jobs {
		job, err := sched.AddJob(requestDriven(req))
		if err != nil {
			return ScenarioResult{}, err
		}
		jobs = append(jobs, namedJob{model: req.Model, job: job})
		if sc.Traffic != nil && !req.Train {
			tenantNames = append(tenantNames, job.Name())
			tenantJobs = append(tenantJobs, job)
		}
	}
	for _, groupReqs := range sc.Groups {
		if sf == nil {
			return ScenarioResult{}, fmt.Errorf("control: groups need the switchflow scheduler")
		}
		specs := make([]switchflow.JobSpec, len(groupReqs))
		for i, req := range groupReqs {
			specs[i] = requestDriven(req)
		}
		group, err := sf.AddSharedGroup(specs)
		if err != nil {
			return ScenarioResult{}, err
		}
		for i, job := range group.Jobs() {
			jobs = append(jobs, namedJob{model: groupReqs[i].Model, job: job})
			if sc.Traffic != nil && !groupReqs[i].Train {
				tenantNames = append(tenantNames, job.Name())
				tenantJobs = append(tenantJobs, job)
			}
		}
	}

	window := time.Duration(sc.DurationMillis) * time.Millisecond
	var offered, admitted int
	if sc.Traffic != nil {
		profile, err := sc.Traffic.Profile(tenantNames)
		if err != nil {
			return ScenarioResult{}, err
		}
		offered, admitted, err = DriveTraffic(sim, tenantJobs, profile, window)
		if err != nil {
			return ScenarioResult{}, err
		}
	} else {
		sim.RunFor(window)
	}

	result := ScenarioResult{
		Machine:         spec.Name(),
		Scheduler:       sched.Name(),
		Window:          window.String(),
		TrafficOffered:  offered,
		TrafficAdmitted: admitted,
	}
	for i, nj := range jobs {
		info := jobInfo(i+1, nj.model, nj.job)
		if sf != nil {
			info.Device = sf.JobDeviceName(nj.job)
		}
		result.Jobs = append(result.Jobs, info)
	}
	if sf != nil {
		result.Preemptions = sf.Preemptions()
		result.Migrations = sf.Migrations()
	}
	return result, nil
}
