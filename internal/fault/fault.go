// Package fault provides deterministic, seed-driven fault injection for
// the simulated substrate. A Plan is a list of virtual-clock events —
// device loss, transient kernel/ECC errors, input-pipeline stalls — that
// an Injector schedules on a sim.Engine. The injector applies the
// device-level effect (failing the GPU, degrading its clock) and then
// notifies the attached schedulers, which decide what happens to the
// jobs: SwitchFlow migrates victims through their configured fallbacks
// and restarts them from host checkpoints (self-healing, §3.4/§5.2),
// while the threaded-TF and MPS baselines lose the jobs outright.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"switchflow/internal/device"
)

// Kind discriminates fault types.
type Kind int

// Fault kinds.
const (
	// KindDeviceLost takes a GPU off the bus: in-flight kernels are
	// dropped and the device's memory contents are gone. Jobs survive
	// only by migrating to a fallback device and restoring state from a
	// host checkpoint.
	KindDeviceLost Kind = iota + 1
	// KindTransient is a one-shot kernel/ECC error on a device: the
	// iteration in flight is corrupted and the victim job must restart
	// from its last checkpoint; the hardware itself stays usable.
	KindTransient
	// KindInputStall pauses every input pipeline for Duration (a storage
	// or preprocessing hiccup); compute keeps draining prefetched
	// batches.
	KindInputStall
	// KindDegraded slows a device's kernel execution by Factor for
	// Duration (thermal throttling, ECC retry storms), then heals it.
	KindDegraded
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindDeviceLost:
		return "device-lost"
	case KindTransient:
		return "transient"
	case KindInputStall:
		return "input-stall"
	case KindDegraded:
		return "degraded"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrDeviceLost is the crash cause of jobs killed by a device loss.
// Schedulers wrap it, so use errors.Is to test for it.
var ErrDeviceLost = errors.New("device lost")

// ErrTransient is the crash cause of baseline jobs killed by a transient
// kernel/ECC fault (they have no restart path).
var ErrTransient = errors.New("transient kernel fault")

// Event is one scheduled fault.
type Event struct {
	// At is the virtual time the fault strikes.
	At time.Duration
	// Kind selects the fault type.
	Kind Kind
	// Device is the target (DeviceLost, Transient, Degraded).
	Device device.ID
	// Duration bounds InputStall and Degraded windows.
	Duration time.Duration
	// Factor is the Degraded slowdown (>= 1).
	Factor float64
}

// Plan is an ordered fault schedule. The zero value is an empty plan;
// builder methods append and return the plan for chaining.
type Plan struct {
	Events []Event
}

// LoseGPU schedules a device-lost fault on GPU gpu at t.
func (p *Plan) LoseGPU(at time.Duration, gpu int) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: KindDeviceLost, Device: device.GPUID(gpu)})
	return p
}

// Transient schedules a one-shot kernel/ECC error on GPU gpu at t.
func (p *Plan) Transient(at time.Duration, gpu int) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: KindTransient, Device: device.GPUID(gpu)})
	return p
}

// StallInputs schedules an input-pipeline stall of length d at t.
func (p *Plan) StallInputs(at, d time.Duration) *Plan {
	p.Events = append(p.Events, Event{At: at, Kind: KindInputStall, Duration: d})
	return p
}

// Degrade schedules a degraded window on GPU gpu: kernels run factor
// times slower for d, then the device heals.
func (p *Plan) Degrade(at time.Duration, gpu int, factor float64, d time.Duration) *Plan {
	p.Events = append(p.Events, Event{
		At: at, Kind: KindDegraded, Device: device.GPUID(gpu), Duration: d, Factor: factor,
	})
	return p
}

// Sorted returns the events ordered by time (stable, so same-instant
// events keep insertion order — the determinism contract).
func (p *Plan) Sorted() []Event {
	out := make([]Event, len(p.Events))
	copy(out, p.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RandomConfig tunes Random's event mix. Zero-valued rates disable that
// kind.
type RandomConfig struct {
	// GPUs is the number of GPUs faults may target (indices 0..GPUs-1).
	GPUs int
	// MeanBetweenTransients is the mean gap between transient errors.
	MeanBetweenTransients time.Duration
	// MeanBetweenStalls and StallDuration shape input stalls.
	MeanBetweenStalls time.Duration
	StallDuration     time.Duration
	// DeviceLossAt, when positive, schedules exactly one device loss at
	// that time on a randomly chosen GPU.
	DeviceLossAt time.Duration
}

// DefaultRandomConfig is a busy-but-survivable mix for chaos sweeps.
func DefaultRandomConfig(gpus int) RandomConfig {
	return RandomConfig{
		GPUs:                  gpus,
		MeanBetweenTransients: 12 * time.Second,
		MeanBetweenStalls:     15 * time.Second,
		StallDuration:         500 * time.Millisecond,
	}
}

// Random draws a fault plan over [0, horizon) from the seed. Identical
// (seed, horizon, cfg) triples produce identical plans — the chaos
// experiment's determinism rests on this.
func Random(seed int64, horizon time.Duration, cfg RandomConfig) Plan {
	rng := rand.New(rand.NewSource(seed))
	var p Plan
	if cfg.GPUs > 0 && cfg.MeanBetweenTransients > 0 {
		for at := expDraw(rng, cfg.MeanBetweenTransients); at < horizon; at += expDraw(rng, cfg.MeanBetweenTransients) {
			p.Transient(at, rng.Intn(cfg.GPUs))
		}
	}
	if cfg.MeanBetweenStalls > 0 && cfg.StallDuration > 0 {
		for at := expDraw(rng, cfg.MeanBetweenStalls); at < horizon; at += expDraw(rng, cfg.MeanBetweenStalls) {
			p.StallInputs(at, cfg.StallDuration)
		}
	}
	if cfg.GPUs > 0 && cfg.DeviceLossAt > 0 && cfg.DeviceLossAt < horizon {
		p.LoseGPU(cfg.DeviceLossAt, rng.Intn(cfg.GPUs))
	}
	return p
}

func expDraw(rng *rand.Rand, mean time.Duration) time.Duration {
	return time.Duration(rng.ExpFloat64() * float64(mean))
}
