package fault

import (
	"switchflow/internal/device"
	"switchflow/internal/sim"
)

// Handler reacts to an injected fault after the device-level effect has
// been applied. Schedulers implement it: they abort executor runs on the
// lost device, migrate or crash the victim jobs, and account recovery
// metrics.
type Handler interface {
	HandleFault(Event)
}

// Injector schedules a Plan's events on the engine. For each event it
// first applies the hardware effect (GPU.Fail, GPU.Degrade/Heal — input
// stalls have none), then notifies handlers in attach order, so a
// handler always observes the post-fault hardware state.
type Injector struct {
	eng      *sim.Engine
	machine  *device.Machine
	plan     Plan
	handlers []Handler
	armed    bool
	injected int
}

// NewInjector builds an injector over the machine. Call Attach for every
// scheduler that should observe faults, then Arm once.
func NewInjector(eng *sim.Engine, machine *device.Machine, plan Plan) *Injector {
	return &Injector{eng: eng, machine: machine, plan: plan}
}

// Attach registers a handler. Handlers attached after Arm still receive
// events that have not fired yet.
func (in *Injector) Attach(h Handler) { in.handlers = append(in.handlers, h) }

// Injected returns how many events have fired so far.
func (in *Injector) Injected() int { return in.injected }

// Arm schedules every plan event. Events in the past (relative to the
// engine's current time) fire immediately in plan order.
func (in *Injector) Arm() {
	if in.armed {
		return
	}
	in.armed = true
	for _, ev := range in.plan.Sorted() {
		ev := ev
		at := ev.At
		if at < in.eng.Now() {
			at = in.eng.Now()
		}
		in.eng.Schedule(at, func() { in.fire(ev) })
	}
}

func (in *Injector) fire(ev Event) {
	in.injected++
	switch ev.Kind {
	case KindDeviceLost:
		if gpu := in.machine.GPU(ev.Device.Index); gpu != nil {
			gpu.Fail()
		}
	case KindDegraded:
		if gpu := in.machine.GPU(ev.Device.Index); gpu != nil && !gpu.Failed() {
			gpu.Degrade(ev.Factor)
			if ev.Duration > 0 {
				in.eng.After(ev.Duration, func() {
					if !gpu.Failed() {
						gpu.Heal()
					}
				})
			}
		}
	case KindTransient, KindInputStall:
		// No hardware effect; the schedulers decide what breaks.
	}
	for _, h := range in.handlers {
		h.HandleFault(ev)
	}
}
