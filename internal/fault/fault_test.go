package fault

import (
	"reflect"
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/sim"
)

func TestRandomIsDeterministic(t *testing.T) {
	cfg := DefaultRandomConfig(2)
	cfg.DeviceLossAt = 30 * time.Second
	a := Random(7, time.Minute, cfg)
	b := Random(7, time.Minute, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plans")
	}
	if len(a.Events) == 0 {
		t.Fatal("default config over a minute produced no events")
	}
	c := Random(8, time.Minute, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestRandomSchedulesRequestedDeviceLoss(t *testing.T) {
	cfg := DefaultRandomConfig(1)
	cfg.DeviceLossAt = 10 * time.Second
	p := Random(1, time.Minute, cfg)
	var losses int
	for _, ev := range p.Events {
		if ev.Kind == KindDeviceLost {
			losses++
			if ev.At != 10*time.Second {
				t.Fatalf("device loss at %v, want 10s", ev.At)
			}
		}
	}
	if losses != 1 {
		t.Fatalf("%d device losses, want exactly 1", losses)
	}
}

func TestSortedIsStableAndNonDestructive(t *testing.T) {
	var p Plan
	p.Transient(2*time.Second, 0)
	p.StallInputs(time.Second, 100*time.Millisecond)
	p.LoseGPU(time.Second, 1)
	got := p.Sorted()
	if got[0].Kind != KindInputStall || got[1].Kind != KindDeviceLost {
		t.Fatalf("same-instant events reordered: %v then %v", got[0].Kind, got[1].Kind)
	}
	if p.Events[0].Kind != KindTransient {
		t.Fatal("Sorted mutated the plan")
	}
}

func TestInjectorAppliesHardwareEffects(t *testing.T) {
	eng := sim.NewEngine()
	machine := device.NewMachine(eng, device.ClassXeonDual, device.ClassV100, device.ClassV100)
	var p Plan
	p.Degrade(time.Second, 1, 2.0, time.Second)
	p.LoseGPU(2*time.Second, 0)
	in := NewInjector(eng, machine, p)
	var seen []Kind
	in.Attach(handlerFunc(func(ev Event) { seen = append(seen, ev.Kind) }))
	in.Arm()

	eng.RunUntil(1500 * time.Millisecond)
	if got := machine.GPU(1).Slowdown(); got != 2.0 {
		t.Fatalf("degraded GPU slowdown = %v, want 2.0", got)
	}
	eng.RunUntil(5 * time.Second)
	if machine.GPU(1).Slowdown() != 1.0 {
		t.Fatal("degraded GPU did not heal after its window")
	}
	if !machine.GPU(0).Failed() {
		t.Fatal("lost GPU not marked failed")
	}
	if machine.Healthy(device.GPUID(0)) {
		t.Fatal("machine reports the lost GPU healthy")
	}
	if got := machine.HealthyGPUs(); got != 1 {
		t.Fatalf("HealthyGPUs = %d, want 1", got)
	}
	if in.Injected() != 2 {
		t.Fatalf("Injected = %d, want 2", in.Injected())
	}
	want := []Kind{KindDegraded, KindDeviceLost}
	if !reflect.DeepEqual(seen, want) {
		t.Fatalf("handler saw %v, want %v", seen, want)
	}
}

type handlerFunc func(Event)

func (f handlerFunc) HandleFault(ev Event) { f(ev) }
