package cost

import (
	"testing"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/graph"
	"switchflow/internal/models"
	"switchflow/internal/occupancy"
)

func TestKernelDurationRooflineCompute(t *testing.T) {
	// A pure-compute conv: 1 GFLOP on a V100 at conv efficiency
	// 0.65 x class efficiency 0.55 of 15.7 TFLOPS.
	n := &graph.Node{Op: graph.OpConv2D, FLOPs: 1e9}
	got := KernelDuration(n, device.ClassV100)
	sec := 1e9 / (15.7e12 * 0.65 * 0.55)
	want := time.Duration(sec * float64(time.Second))
	if diff := (got - want).Abs(); diff > time.Microsecond {
		t.Fatalf("KernelDuration = %v, want ~%v", got, want)
	}
}

func TestKernelDurationMemoryBound(t *testing.T) {
	// A BN touching 1 GB is bandwidth bound on any GPU.
	n := &graph.Node{Op: graph.OpBatchNorm, FLOPs: 1e6, MemBytes: 1 << 30}
	got := KernelDuration(n, device.ClassV100)
	sec := float64(1<<30) / (900e9 * 0.75)
	want := time.Duration(sec * float64(time.Second))
	if diff := (got - want).Abs(); diff > 10*time.Microsecond {
		t.Fatalf("KernelDuration = %v, want ~%v", got, want)
	}
}

func TestKernelDurationMinimumFloor(t *testing.T) {
	n := &graph.Node{Op: graph.OpAdd, FLOPs: 10}
	if got := KernelDuration(n, device.ClassV100); got < 2*time.Microsecond {
		t.Fatalf("tiny kernel duration %v below floor", got)
	}
}

func TestKernelDurationZeroForNonGPUOps(t *testing.T) {
	for _, op := range []graph.OpType{graph.OpSend, graph.OpRecv, graph.OpPreprocess, graph.OpNoOp} {
		n := &graph.Node{Op: op, FLOPs: 1e9}
		if got := KernelDuration(n, device.ClassV100); got != 0 {
			t.Errorf("KernelDuration(%v) = %v, want 0", op, got)
		}
	}
}

func TestSlowerGPUsAreSlower(t *testing.T) {
	n := &graph.Node{Op: graph.OpConv2D, FLOPs: 1e9, MemBytes: 1 << 20}
	v100 := KernelDuration(n, device.ClassV100)
	gtx := KernelDuration(n, device.ClassGTX1080Ti)
	tx2 := KernelDuration(n, device.ClassJetsonTX2)
	if !(v100 < gtx && gtx < tx2) {
		t.Fatalf("ordering violated: V100 %v, 1080Ti %v, TX2 %v", v100, gtx, tx2)
	}
}

func TestOccupancyHeavyVsLight(t *testing.T) {
	conv := &graph.Node{Op: graph.OpConv2D}
	add := &graph.Node{Op: graph.OpAdd}
	if Occupancy(conv) < 0.5 {
		t.Errorf("conv occupancy %v should be register-bound (>=0.5)", Occupancy(conv))
	}
	if Occupancy(add) >= 0.5 {
		t.Errorf("add occupancy %v should be light", Occupancy(add))
	}
}

func TestIsExpensiveClassification(t *testing.T) {
	class := device.ClassV100
	conv := &graph.Node{Op: graph.OpConv2D, FLOPs: 1e6}
	if !IsExpensive(conv, class) {
		t.Error("conv should be expensive regardless of size")
	}
	relu := &graph.Node{Op: graph.OpActivation, FLOPs: 100}
	if IsExpensive(relu, class) {
		t.Error("tiny relu should be inexpensive")
	}
	bigBN := &graph.Node{Op: graph.OpBatchNorm, MemBytes: 1 << 30}
	if !IsExpensive(bigBN, class) {
		t.Error("1 GiB batchnorm should classify expensive by duration")
	}
}

func TestCPUDurationPreprocessOverride(t *testing.T) {
	n := &graph.Node{Op: graph.OpPreprocess, CPUTime: 100 * time.Millisecond}
	if got := CPUDuration(n, device.ClassXeonDual); got != 100*time.Millisecond {
		t.Fatalf("Xeon preprocess = %v, want 100ms", got)
	}
	// The TX2's ARM cores are 2x slower.
	slow := CPUDuration(n, device.ClassCortexA57)
	if slow != 200*time.Millisecond {
		t.Fatalf("ARM preprocess = %v, want 200ms", slow)
	}
}

func TestCPUDurationComputeOps(t *testing.T) {
	n := &graph.Node{Op: graph.OpConv2D, FLOPs: 32e9}
	got := CPUDuration(n, device.ClassXeonDual)
	if diff := (got - time.Second).Abs(); diff > time.Millisecond {
		t.Fatalf("32 GFLOP conv on a 32 GFLOPS core = %v, want ~1s", got)
	}
}

func TestResNet50TrainStepCalibration(t *testing.T) {
	// The headline calibration target (§2.2 / Figure 2): solo ResNet50
	// training at BS=16 on a V100 runs at ~226 images/s. Sum the kernel
	// durations of the training graph's GPU nodes and check the implied
	// throughput is in a plausible band around that.
	spec, err := models.ByName("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(models.BuildConfig{Batch: 16, Training: true, Device: device.GPUID(0)})
	if err != nil {
		t.Fatal(err)
	}
	var gpuTime time.Duration
	for _, n := range g.Nodes() {
		if n.Device == device.GPUID(0) {
			gpuTime += KernelDuration(n, device.ClassV100)
		}
	}
	throughput := 16 / gpuTime.Seconds()
	if throughput < 160 || throughput > 320 {
		t.Fatalf("solo ResNet50 BS=16 V100 training = %.0f img/s, want 160-320 (paper: 226)",
			throughput)
	}
}

// TestFootprintsBackedByOccupancyCalculator ties the cost model's
// admission footprints to the occupancy analysis the paper ran (§2.2):
// the cuDNN conv launch profile is register-bound with low warp
// occupancy, so its device footprint must mark it non-concurrent (>= 0.5
// triggers serialization in the GPU admission model), while elementwise
// launches must not.
func TestFootprintsBackedByOccupancyCalculator(t *testing.T) {
	conv := occupancy.LaunchConfig{
		ThreadsPerBlock:    256,
		RegistersPerThread: 96,
		SharedMemPerBlock:  40 << 10,
		GridBlocks:         4096,
	}
	a, err := occupancy.Analyze(conv, occupancy.Volta)
	if err != nil {
		t.Fatal(err)
	}
	if !a.RegisterBound {
		t.Fatal("conv profile not register bound; §2.2 premise broken")
	}
	foot, err := occupancy.DeviceFootprint(conv, occupancy.Volta, device.ClassV100.SMs)
	if err != nil {
		t.Fatal(err)
	}
	convNode := &graph.Node{Op: graph.OpConv2D}
	if foot < 0.5 != (Occupancy(convNode) < 0.5) {
		t.Fatalf("cost footprint %.2f disagrees with calculator footprint %.2f",
			Occupancy(convNode), foot)
	}

	add := occupancy.LaunchConfig{ThreadsPerBlock: 256, RegistersPerThread: 24, GridBlocks: 128}
	addFoot, err := occupancy.DeviceFootprint(add, occupancy.Volta, device.ClassV100.SMs)
	if err != nil {
		t.Fatal(err)
	}
	addNode := &graph.Node{Op: graph.OpAdd}
	if addFoot >= 0.5 || Occupancy(addNode) >= 0.5 {
		t.Fatalf("elementwise marked non-concurrent: calc %.2f, cost %.2f",
			addFoot, Occupancy(addNode))
	}
}

func TestKernelDurationMemoMatchesSlowPath(t *testing.T) {
	nodes := []*graph.Node{
		{Op: graph.OpConv2D, FLOPs: 2.3e9, MemBytes: 48 << 20},
		{Op: graph.OpDense, FLOPs: 5.1e8, MemBytes: 12 << 20},
		{Op: graph.OpAdd, FLOPs: 1e6, MemBytes: 4 << 20},
		{Op: graph.OpLSTMCell, FLOPs: 9.7e8, MemBytes: 90 << 20},
		{Op: graph.OpSend}, // no kernel
	}
	classes := []device.GPUClass{
		device.ClassV100, device.ClassRTX2080Ti, device.ClassGTX1080Ti, device.ClassJetsonTX2,
	}
	for _, n := range nodes {
		for _, class := range classes {
			want := time.Duration(0)
			if _, ok := computeEfficiency[n.Op]; ok {
				want = kernelDurationSlow(n, class)
			}
			// Twice: cold (fills memo) and warm (reads memo).
			if got := KernelDuration(n, class); got != want {
				t.Errorf("%v on %s cold = %v, want %v", n.Op, class.Name, got, want)
			}
			if got := KernelDuration(n, class); got != want {
				t.Errorf("%v on %s warm = %v, want %v", n.Op, class.Name, got, want)
			}
		}
	}
}

func TestKernelDurationDistinguishesClasses(t *testing.T) {
	n := &graph.Node{Op: graph.OpConv2D, FLOPs: 2.3e9, MemBytes: 48 << 20}
	v100 := KernelDuration(n, device.ClassV100)
	tx2 := KernelDuration(n, device.ClassJetsonTX2)
	if v100 >= tx2 {
		t.Fatalf("memo conflated classes: V100 %v not faster than TX2 %v", v100, tx2)
	}
}

func BenchmarkKernelDurationMemoized(b *testing.B) {
	n := &graph.Node{Op: graph.OpConv2D, FLOPs: 2.3e9, MemBytes: 48 << 20}
	KernelDuration(n, device.ClassV100) // warm the memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KernelDuration(n, device.ClassV100)
	}
}

func BenchmarkKernelDurationSlowPath(b *testing.B) {
	n := &graph.Node{Op: graph.OpConv2D, FLOPs: 2.3e9, MemBytes: 48 << 20}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernelDurationSlow(n, device.ClassV100)
	}
}

// TestSerialEstimateSubLinearScaling: the batch pricing the dynamic
// batcher relies on. Launch overheads and minimum kernel times are fixed
// per kernel, so a batch-8 inference graph must price strictly below
// eight batch-1 graphs (and strictly above one).
func TestSerialEstimateSubLinearScaling(t *testing.T) {
	spec, err := models.ByName("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	gpuSub := func(batch int) *graph.Subgraph {
		g, err := spec.Build(models.BuildConfig{Batch: batch, Training: false, Device: device.GPUID(0)})
		if err != nil {
			t.Fatal(err)
		}
		subs, err := graph.Partition(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range subs {
			if sub.Device == device.GPUID(0) {
				return sub
			}
		}
		t.Fatal("no GPU subgraph")
		return nil
	}
	one := SerialGPUEstimate(gpuSub(1), device.ClassV100)
	eight := SerialGPUEstimate(gpuSub(8), device.ClassV100)
	if one <= 0 || eight <= 0 {
		t.Fatalf("estimates must be positive: b1=%v b8=%v", one, eight)
	}
	if eight <= one {
		t.Fatalf("batch 8 (%v) must cost more than batch 1 (%v)", eight, one)
	}
	if eight >= 8*one {
		t.Fatalf("batch 8 (%v) must cost less than 8x batch 1 (%v): batching must amortize launches", eight, 8*one)
	}
}

func TestSerialCPUEstimatePositive(t *testing.T) {
	spec, err := models.ByName("MobileNet")
	if err != nil {
		t.Fatal(err)
	}
	g, err := spec.Build(models.BuildConfig{Batch: 1, Training: false, Device: device.CPUID})
	if err != nil {
		t.Fatal(err)
	}
	subs, err := graph.Partition(g)
	if err != nil {
		t.Fatal(err)
	}
	var total time.Duration
	for _, sub := range subs {
		total += SerialCPUEstimate(sub, device.ClassXeonDual)
	}
	if total <= 0 {
		t.Fatalf("all-CPU estimate must be positive, got %v", total)
	}
}
