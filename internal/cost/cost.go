// Package cost maps computation-graph nodes to execution costs on concrete
// devices. GPU kernels follow a roofline model (compute-bound vs
// memory-bound) plus a launch overhead; CPU ops charge per-core dense-math
// throughput. It also reproduces TF's expensive/inexpensive op
// classification, which drives executor queueing decisions (§2.1).
package cost

import (
	"sync"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/graph"
)

// computeEfficiency is the fraction of a GPU's peak FP32 throughput a
// cuDNN-style kernel achieves for each op family. Calibrated so that solo
// ResNet50 training at BS=16 on the V100 lands near the paper's
// 226 images/s (Figure 2 discussion).
var computeEfficiency = map[graph.OpType]float64{
	graph.OpConv2D:          0.65,
	graph.OpDepthwiseConv2D: 0.15,
	graph.OpDense:           0.75,
	graph.OpLSTMCell:        0.35,
	graph.OpAttention:       0.45,
	graph.OpEmbedding:       0.30,
	graph.OpGradient:        0.60,
	graph.OpBatchNorm:       0.50,
	graph.OpActivation:      0.60,
	graph.OpPool:            0.50,
	graph.OpAdd:             0.60,
	graph.OpConcat:          0.60,
	graph.OpSoftmax:         0.50,
	graph.OpLoss:            0.40,
	graph.OpApplyGradient:   0.50,
}

// opFootprint is the launch-configuration resource footprint per op
// family. High-footprint kernels are register/SM bound and barely co-run
// with other kernels (§2.2: 10 of 13 conv kernels were
// register-bottlenecked); see internal/occupancy for the calculator that
// backs these values.
var opFootprint = map[graph.OpType]float64{
	graph.OpConv2D:          0.90,
	graph.OpDepthwiseConv2D: 0.70,
	graph.OpDense:           0.90,
	graph.OpLSTMCell:        0.90,
	graph.OpAttention:       0.85,
	graph.OpEmbedding:       0.50,
	graph.OpGradient:        0.90,
	graph.OpBatchNorm:       0.50,
	graph.OpActivation:      0.40,
	graph.OpPool:            0.50,
	graph.OpAdd:             0.30,
	graph.OpConcat:          0.30,
	graph.OpSoftmax:         0.40,
	graph.OpLoss:            0.40,
	graph.OpApplyGradient:   0.40,
}

// kernelKey identifies a kernel cost-model evaluation: the op signature
// (family, FLOPs, memory traffic) and the GPU class it runs on. Identical
// kernels are re-costed on every iteration of every run and every
// experiment cell rebuilds the same model graphs, so the result is worth
// memoizing globally.
type kernelKey struct {
	op    graph.OpType
	flops float64
	mem   int64
	class device.GPUClass
}

// kernelMemo caches KernelDuration results. sync.Map fits the access
// pattern exactly: a small, quickly-stabilizing key set written once and
// then read lock-free from every parallel experiment cell.
var kernelMemo sync.Map // kernelKey -> time.Duration

// KernelDuration returns the solo execution time of node n on a GPU of the
// given class: max(compute time, memory time) under the roofline model.
// Send/Recv and CPU-only ops have no GPU kernel and return zero. Results
// are memoized twice over: a per-node slot serves the steady-state case
// (the same node re-costed every iteration on the same GPU), and a global
// per-(op signature, GPU class) table shares results across the identical
// model graphs that every experiment cell rebuilds.
func KernelDuration(n *graph.Node, class device.GPUClass) time.Duration {
	if d, ok := n.CachedKernelDuration(class); ok {
		return d
	}
	if _, ok := computeEfficiency[n.Op]; !ok {
		n.SetCachedKernelDuration(class, 0)
		return 0
	}
	key := kernelKey{op: n.Op, flops: n.FLOPs, mem: n.MemBytes, class: class}
	var d time.Duration
	if v, ok := kernelMemo.Load(key); ok {
		d = v.(time.Duration)
	} else {
		d = kernelDurationSlow(n, class)
		kernelMemo.Store(key, d)
	}
	n.SetCachedKernelDuration(class, d)
	return d
}

// kernelDurationSlow evaluates the roofline model without the memo.
func kernelDurationSlow(n *graph.Node, class device.GPUClass) time.Duration {
	eff := computeEfficiency[n.Op]
	computeSec := 0.0
	if n.FLOPs > 0 {
		computeSec = n.FLOPs / (class.FP32TFLOPS * 1e12 * eff * class.Efficiency)
	}
	memSec := 0.0
	if n.MemBytes > 0 {
		memSec = float64(n.MemBytes) / (class.MemBandwidthGBps * 1e9 * 0.75)
	}
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	d := time.Duration(sec * float64(time.Second))
	if d < 2*time.Microsecond {
		d = 2 * time.Microsecond // minimum kernel time on device
	}
	return d
}

// Occupancy returns the launch occupancy for n's kernel in [0,1].
func Occupancy(n *graph.Node) float64 {
	if occ, ok := opFootprint[n.Op]; ok {
		return occ
	}
	return 0
}

// IsExpensive reproduces TF's executor cost classification: ops whose
// estimated cost exceeds a threshold get their own local queue; cheap ops
// ride on their parent's queue (§2.1).
func IsExpensive(n *graph.Node, class device.GPUClass) bool {
	switch n.Op {
	case graph.OpConv2D, graph.OpDepthwiseConv2D, graph.OpDense,
		graph.OpLSTMCell, graph.OpAttention, graph.OpGradient:
		return true
	case graph.OpPreprocess:
		return true
	default:
		return KernelDuration(n, class) > 100*time.Microsecond
	}
}

// CPUDuration returns how long node n occupies one worker thread when it
// executes on the CPU. Preprocessing shards carry an explicit CPUTime;
// compute ops (a graph migrated to an MKL-style CPU executor, §3.3) charge
// per-core GFLOPS.
func CPUDuration(n *graph.Node, class device.CPUClass) time.Duration {
	if n.CPUTime > 0 {
		return time.Duration(float64(n.CPUTime) / class.SpeedFactor)
	}
	if n.FLOPs > 0 {
		sec := n.FLOPs / (class.GFLOPS * 1e9)
		return time.Duration(sec * float64(time.Second))
	}
	// Framework bookkeeping ops (iterator, no-op, loss scalar...) cost a
	// few microseconds of CPU time.
	return time.Duration(float64(3*time.Microsecond) / class.SpeedFactor)
}

// LaunchOverhead returns the CPU-side cost of dispatching n to the GPU.
func LaunchOverhead(class device.GPUClass) time.Duration {
	return class.LaunchOverhead
}

// SerialGPUEstimate prices one execution of sub on a GPU of the given
// class as the serialized sum of per-kernel launch overheads and roofline
// durations. The dynamic batcher and the admission controller use it to
// project micro-batch execution time: because the fixed launch overheads
// and minimum kernel times do not grow with batch size, the estimate
// scales sub-linearly in the batch — a batch of k requests prices well
// below k solo requests.
func SerialGPUEstimate(sub *graph.Subgraph, class device.GPUClass) time.Duration {
	var total time.Duration
	for _, n := range sub.Nodes {
		if d := KernelDuration(n, class); d > 0 {
			total += class.LaunchOverhead + d
		}
	}
	return total
}

// SerialCPUEstimate prices one execution of sub on a CPU of the given
// class as the serialized sum of per-op CPU durations — an upper bound the
// admission controller uses for all-CPU placements.
func SerialCPUEstimate(sub *graph.Subgraph, class device.CPUClass) time.Duration {
	var total time.Duration
	for _, n := range sub.Nodes {
		total += CPUDuration(n, class)
	}
	return total
}
