// Package launchcfg parses the environment-variable configuration
// interface of the paper's Listing 1: input reuse between correlated
// models is enabled and wired up entirely through TF_* environment
// variables in the user's launch program, with a master model carrying
// the preprocessing stage and subsidiary models linking their recv nodes
// to it (§4).
package launchcfg

import (
	"fmt"
	"strings"
)

// The environment variables of Listing 1.
const (
	// EnvReuseInputs toggles input sharing ("True"/"False").
	EnvReuseInputs = "TF_SET_REUSE_INPUTS"
	// EnvMasterX and EnvMasterY name the master model's input ops.
	EnvMasterX = "TF_REUSE_INPUT_OP_NAME_MASTER_X"
	EnvMasterY = "TF_REUSE_INPUT_OP_NAME_MASTER_y"
	// EnvSubX and EnvSubY name the subsidiary models' input ops
	// (comma-separated when multiple models share the master's stage).
	EnvSubX = "TF_REUSE_INPUT_OPS_NAME_SUB_X"
	EnvSubY = "TF_REUSE_INPUT_OPS_NAME_SUB_y"
)

// Config is the parsed input-sharing configuration.
type Config struct {
	// ReuseInputs reports whether sharing is enabled.
	ReuseInputs bool
	// MasterX, MasterY are the master model's input op names.
	MasterX, MasterY string
	// SubX, SubY are the subsidiary models' input op names, pairwise.
	SubX, SubY []string
}

// GroupSize returns the number of models in the sharing group (master +
// subsidiaries), or zero when sharing is disabled.
func (c Config) GroupSize() int {
	if !c.ReuseInputs {
		return 0
	}
	return 1 + len(c.SubX)
}

// FromEnv parses the Listing 1 variables through getenv (pass os.Getenv
// in production, a map lookup in tests). Absent or false EnvReuseInputs
// yields a disabled config; enabled configs are validated for complete
// master/sub pairs.
func FromEnv(getenv func(string) string) (Config, error) {
	var cfg Config
	switch strings.ToLower(strings.TrimSpace(getenv(EnvReuseInputs))) {
	case "", "false", "0", "no":
		return cfg, nil
	case "true", "1", "yes":
		cfg.ReuseInputs = true
	default:
		return cfg, fmt.Errorf("launchcfg: %s must be True or False, got %q",
			EnvReuseInputs, getenv(EnvReuseInputs))
	}
	cfg.MasterX = strings.TrimSpace(getenv(EnvMasterX))
	cfg.MasterY = strings.TrimSpace(getenv(EnvMasterY))
	if cfg.MasterX == "" || cfg.MasterY == "" {
		return Config{}, fmt.Errorf("launchcfg: %s requires %s and %s",
			EnvReuseInputs, EnvMasterX, EnvMasterY)
	}
	cfg.SubX = splitList(getenv(EnvSubX))
	cfg.SubY = splitList(getenv(EnvSubY))
	if len(cfg.SubX) == 0 {
		return Config{}, fmt.Errorf("launchcfg: %s requires at least one subsidiary in %s",
			EnvReuseInputs, EnvSubX)
	}
	if len(cfg.SubX) != len(cfg.SubY) {
		return Config{}, fmt.Errorf("launchcfg: %s and %s must pair up (%d vs %d entries)",
			EnvSubX, EnvSubY, len(cfg.SubX), len(cfg.SubY))
	}
	seen := map[string]bool{cfg.MasterX: true}
	for _, x := range cfg.SubX {
		if seen[x] {
			return Config{}, fmt.Errorf("launchcfg: duplicate input op name %q", x)
		}
		seen[x] = true
	}
	return cfg, nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if trimmed := strings.TrimSpace(part); trimmed != "" {
			out = append(out, trimmed)
		}
	}
	return out
}
