package launchcfg

import "testing"

func env(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

// listing1 is the exact configuration of the paper's Listing 1.
var listing1 = map[string]string{
	EnvReuseInputs: "True",
	EnvMasterX:     "X00",
	EnvMasterY:     "y00",
	EnvSubX:        "X01",
	EnvSubY:        "y01",
}

func TestListing1Parses(t *testing.T) {
	cfg, err := FromEnv(env(listing1))
	if err != nil {
		t.Fatal(err)
	}
	if !cfg.ReuseInputs {
		t.Fatal("reuse not enabled")
	}
	if cfg.MasterX != "X00" || cfg.MasterY != "y00" {
		t.Fatalf("master = %s/%s", cfg.MasterX, cfg.MasterY)
	}
	if len(cfg.SubX) != 1 || cfg.SubX[0] != "X01" || cfg.SubY[0] != "y01" {
		t.Fatalf("subs = %v/%v", cfg.SubX, cfg.SubY)
	}
	if cfg.GroupSize() != 2 {
		t.Fatalf("GroupSize() = %d, want 2", cfg.GroupSize())
	}
}

func TestDisabledByDefault(t *testing.T) {
	cfg, err := FromEnv(env(nil))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ReuseInputs || cfg.GroupSize() != 0 {
		t.Fatalf("default config = %+v", cfg)
	}
}

func TestMultipleSubsidiaries(t *testing.T) {
	m := map[string]string{
		EnvReuseInputs: "true",
		EnvMasterX:     "X00", EnvMasterY: "y00",
		EnvSubX: "X01, X02,X03", EnvSubY: "y01,y02, y03",
	}
	cfg, err := FromEnv(env(m))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.GroupSize() != 4 {
		t.Fatalf("GroupSize() = %d, want 4", cfg.GroupSize())
	}
}

func TestValidationErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(map[string]string)
	}{
		{"bad bool", func(m map[string]string) { m[EnvReuseInputs] = "maybe" }},
		{"missing master x", func(m map[string]string) { delete(m, EnvMasterX) }},
		{"missing master y", func(m map[string]string) { delete(m, EnvMasterY) }},
		{"no subsidiaries", func(m map[string]string) { delete(m, EnvSubX); delete(m, EnvSubY) }},
		{"unpaired subs", func(m map[string]string) { m[EnvSubX] = "X01,X02" }},
		{"duplicate names", func(m map[string]string) { m[EnvSubX] = "X00" }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m := make(map[string]string, len(listing1))
			for k, v := range listing1 {
				m[k] = v
			}
			tt.mutate(m)
			if _, err := FromEnv(env(m)); err == nil {
				t.Fatalf("config %v accepted", m)
			}
		})
	}
}

func TestBoolSpellings(t *testing.T) {
	for _, s := range []string{"True", "true", "TRUE", " true ", "1", "yes"} {
		m := map[string]string{
			EnvReuseInputs: s,
			EnvMasterX:     "X00", EnvMasterY: "y00",
			EnvSubX: "X01", EnvSubY: "y01",
		}
		cfg, err := FromEnv(env(m))
		if err != nil || !cfg.ReuseInputs {
			t.Errorf("FromEnv with %s=%q: cfg=%+v err=%v", EnvReuseInputs, s, cfg, err)
		}
	}
	for _, s := range []string{"", "False", "false", "0", "no", "  "} {
		cfg, err := FromEnv(env(map[string]string{EnvReuseInputs: s}))
		if err != nil || cfg.ReuseInputs {
			t.Errorf("FromEnv with %s=%q: cfg=%+v err=%v", EnvReuseInputs, s, cfg, err)
		}
	}
}

func TestDuplicateAmongSubsidiaries(t *testing.T) {
	m := map[string]string{
		EnvReuseInputs: "True",
		EnvMasterX:     "X00", EnvMasterY: "y00",
		EnvSubX: "X01,X01", EnvSubY: "y01,y02",
	}
	if _, err := FromEnv(env(m)); err == nil {
		t.Fatal("duplicate subsidiary input op accepted")
	}
}

func TestWhitespaceOnlySubsidiariesRejected(t *testing.T) {
	m := map[string]string{
		EnvReuseInputs: "True",
		EnvMasterX:     "X00", EnvMasterY: "y00",
		EnvSubX: " , ,", EnvSubY: "",
	}
	if _, err := FromEnv(env(m)); err == nil {
		t.Fatal("whitespace-only subsidiary list accepted")
	}
}

func TestErrorsReturnZeroConfig(t *testing.T) {
	m := map[string]string{EnvReuseInputs: "True"} // missing everything else
	cfg, err := FromEnv(env(m))
	if err == nil {
		t.Fatal("incomplete config accepted")
	}
	if cfg.ReuseInputs || cfg.MasterX != "" || cfg.MasterY != "" || len(cfg.SubX) != 0 || len(cfg.SubY) != 0 {
		t.Fatalf("error path leaked partial config: %+v", cfg)
	}
}
