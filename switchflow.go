package switchflow

import (
	"errors"
	"fmt"
	"time"

	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// MachineSpec selects one of the paper's testbeds or a custom layout.
type MachineSpec struct {
	build func(eng *sim.Engine) *device.Machine
	name  string
}

// Name returns a human-readable machine description.
func (m MachineSpec) Name() string { return m.name }

// V100Server is the 4x Tesla V100 server of §5.1.
func V100Server() MachineSpec {
	return MachineSpec{build: device.NewV100Server, name: "4x Tesla V100"}
}

// NVLinkV100Server is the 4x Tesla V100 server with NVLink pairs: GPUs
// {0,1} and {2,3} form NVLink islands; cross-island traffic rides PCIe.
// Gang-scheduled jobs sync gradients measurably faster on an island.
func NVLinkV100Server() MachineSpec {
	return MachineSpec{build: device.NewNVLinkV100Server, name: "4x Tesla V100 (NVLink pairs)"}
}

// TwoGPUServer is the GTX 1080 Ti (gpu:0) + RTX 2080 Ti (gpu:1) server.
func TwoGPUServer() MachineSpec {
	return MachineSpec{build: device.NewTwoGPUServer, name: "GTX 1080 Ti + RTX 2080 Ti"}
}

// JetsonTX2 is the embedded board.
func JetsonTX2() MachineSpec {
	return MachineSpec{build: device.NewJetsonTX2, name: "Jetson TX2"}
}

// SingleGPU builds a one-GPU Xeon server of the named GPU model:
// "V100", "RTX 2080 Ti", "GTX 1080 Ti", or "Jetson TX2".
func SingleGPU(gpu string) (MachineSpec, error) {
	var class device.GPUClass
	cpu := device.ClassXeonDual
	switch gpu {
	case "V100":
		class = device.ClassV100
	case "RTX 2080 Ti":
		class = device.ClassRTX2080Ti
	case "GTX 1080 Ti":
		class = device.ClassGTX1080Ti
	case "Jetson TX2":
		class = device.ClassJetsonTX2
		cpu = device.ClassCortexA57
	default:
		return MachineSpec{}, fmt.Errorf("switchflow: unknown GPU %q", gpu)
	}
	return MachineSpec{
		build: func(eng *sim.Engine) *device.Machine {
			return device.NewMachine(eng, cpu, class)
		},
		name: gpu,
	}, nil
}

// Simulation owns the virtual clock and one machine. All schedulers and
// jobs created from it share both.
type Simulation struct {
	eng     *sim.Engine
	machine *device.Machine
	spec    MachineSpec
}

// NewSimulation creates a simulation over the given machine.
func NewSimulation(spec MachineSpec) *Simulation {
	eng := sim.NewEngine()
	return &Simulation{eng: eng, machine: spec.build(eng), spec: spec}
}

// Now returns the current virtual time.
func (s *Simulation) Now() time.Duration { return s.eng.Now() }

// EventBus returns the simulation's observability spine: every device,
// executor, scheduler, serving and fault event of this simulation is
// published there. Subscribe sinks (e.g. an obs.Recorder for Chrome-trace
// export) before running the simulation so the event numbering is
// complete.
func (s *Simulation) EventBus() *obs.Bus { return s.machine.Bus() }

// RunFor advances virtual time by d, executing everything scheduled.
func (s *Simulation) RunFor(d time.Duration) { s.eng.RunFor(d) }

// RunUntil advances virtual time to t.
func (s *Simulation) RunUntil(t time.Duration) { s.eng.RunUntil(t) }

// RunWhile advances time until cond returns false or the horizon passes.
func (s *Simulation) RunWhile(horizon time.Duration, cond func() bool) {
	for s.eng.Now() < horizon && cond() {
		if !s.eng.Step() {
			return
		}
	}
}

// GPUCount returns the number of GPUs on the machine.
func (s *Simulation) GPUCount() int { return len(s.machine.GPUs) }

// GPUBusy returns the accumulated kernel-busy time of GPU i.
func (s *Simulation) GPUBusy(i int) time.Duration {
	gpu := s.machine.GPU(i)
	if gpu == nil {
		return 0
	}
	return gpu.BusyTime()
}

// GPUMemoryUsed returns the bytes currently allocated on GPU i.
func (s *Simulation) GPUMemoryUsed(i int) int64 {
	gpu := s.machine.GPU(i)
	if gpu == nil {
		return 0
	}
	return gpu.Mem.Used()
}

// Models lists the zoo's model names.
func Models() []string { return models.Names() }

// CPUDevice is the Placement.Device value selecting the CPU instead of a
// GPU. Serving jobs may run CPU-only; training jobs may not.
const CPUDevice = -1

// Placement describes where a job runs: its primary device, migration
// fallbacks, and — for elastic training jobs — the virtual nodes its
// batch splits across. The zero value means "GPU 0, no fallbacks".
type Placement struct {
	// Device is the primary device: a GPU index, or CPUDevice.
	Device int
	// Fallbacks are migration targets in preference order (GPU indices).
	Fallbacks []int
	// AllowCPU appends the CPU as the last migration target.
	AllowCPU bool
	// VNodes, when non-empty, makes a training job elastic: one virtual
	// node per listed GPU index (repeats time-multiplex a GPU), with batch
	// shares sized to each device's throughput. VNodes[0] is the primary
	// device; Device must match it or be left zero. Elastic jobs can be
	// grown, shrunk, rebound, and drained at runtime without a restart.
	VNodes []int
}

// isZero reports whether the placement was left entirely unset.
func (p Placement) isZero() bool {
	return p.Device == 0 && p.Fallbacks == nil && !p.AllowCPU && p.VNodes == nil
}

// JobSpec describes a DL job for any scheduler.
type JobSpec struct {
	// Name labels the job.
	Name string
	// Model is a zoo model name (see Models).
	Model string
	// Batch is the mini-batch size.
	Batch int
	// Train selects a training job; otherwise the job serves inference.
	Train bool
	// Priority orders jobs for SwitchFlow preemption (higher wins).
	Priority int
	// Placement says where the job runs (primary device, fallbacks,
	// virtual nodes). It supersedes GPU/FallbackGPUs/FallbackCPU; setting
	// both is rejected by Validate.
	Placement Placement
	// Gang makes an elastic training job a synchronous data-parallel
	// gang: one replica per virtual node on a distinct GPU, computing its
	// batch share then meeting at a ring all-reduce step barrier priced
	// on the machine's interconnect topology. The scheduler places,
	// preempts, and resumes the gang as one unit, never a lone replica.
	// Requires Train and at least two replicas (Replicas or
	// Placement.VNodes).
	Gang bool
	// Replicas is the gang width. With Placement.VNodes empty the
	// replicas land on consecutive GPUs starting at Placement.Device;
	// with VNodes set it must be zero or match their count.
	Replicas int
	// GPU is the preferred GPU index.
	//
	// Deprecated: set Placement.Device instead.
	GPU int
	// FallbackGPUs are migration targets in preference order.
	//
	// Deprecated: set Placement.Fallbacks instead.
	FallbackGPUs []int
	// FallbackCPU appends the CPU as the last migration target.
	//
	// Deprecated: set Placement.AllowCPU instead.
	FallbackCPU bool
	// ServeEvery sets an open-loop inference arrival period.
	ServeEvery time.Duration
	// ClosedLoop makes the inference stream continuous (next request on
	// completion).
	ClosedLoop bool
	// Saturated makes the inference job iterate with unbounded backlog
	// (throughput measurement).
	Saturated bool
	// RequestDriven disables the job's own arrival clock entirely: every
	// request arrives through Job.Offer (trace-driven traffic). Mutually
	// exclusive with ServeEvery, ClosedLoop, and Saturated.
	RequestDriven bool
	// PoissonArrivals draws exponential inter-arrival times with mean
	// ServeEvery (seeded by ArrivalSeed).
	PoissonArrivals bool
	// ArrivalSeed seeds the stochastic arrival process.
	ArrivalSeed int64
	// SLO is the serving latency objective. Admission control sheds an
	// arriving request when its projected queueing delay exceeds the SLO;
	// zero admits everything.
	SLO time.Duration
	// MaxBatch enables dynamic micro-batching: up to MaxBatch queued
	// requests fuse into one compute launch (open-loop serving only).
	// Zero or one keeps single-request launches.
	MaxBatch int
	// BatchWait bounds how long a sub-target micro-batch may hold the
	// launch waiting for more requests. Requires MaxBatch > 1.
	BatchWait time.Duration
	// Eager runs the model in dynamic-graph mode (per-op dispatch, no
	// graph optimization).
	Eager bool
	// Fuse applies static-graph elementwise fusion.
	Fuse bool
}

// ErrInvalidJobSpec is wrapped by every JobSpec validation error; test
// with errors.Is.
var ErrInvalidJobSpec = errors.New("invalid job spec")

// placement normalizes the spec's placement: the deprecated
// GPU/FallbackGPUs/FallbackCPU shims lower into a Placement value, an
// explicit Placement passes through (VNodes[0] filling an unset Device),
// and mixing the two styles is rejected.
func (spec JobSpec) placement() (Placement, error) {
	if spec.Placement.isZero() {
		return spec.gangPlacement(Placement{
			Device:    spec.GPU,
			Fallbacks: spec.FallbackGPUs,
			AllowCPU:  spec.FallbackCPU,
		}), nil
	}
	if spec.GPU != 0 || spec.FallbackGPUs != nil || spec.FallbackCPU {
		return Placement{}, fmt.Errorf("%w: set either Placement or the deprecated GPU/FallbackGPUs/FallbackCPU fields, not both", ErrInvalidJobSpec)
	}
	p := spec.Placement
	if len(p.VNodes) > 0 && p.Device == 0 {
		p.Device = p.VNodes[0]
	}
	return spec.gangPlacement(p), nil
}

// gangPlacement materializes a gang spec's replica set: when the spec
// names no explicit VNodes, Replicas consecutive GPUs starting at the
// primary device become the gang's virtual nodes.
func (spec JobSpec) gangPlacement(p Placement) Placement {
	if !spec.Gang || len(p.VNodes) > 0 || spec.Replicas < 1 || p.Device < 0 {
		return p
	}
	p.VNodes = make([]int, spec.Replicas)
	for i := range p.VNodes {
		p.VNodes[i] = p.Device + i
	}
	return p
}

// validatePlacement checks an explicit (non-shim) Placement. The legacy
// shim path keeps its original, looser checks so old specs behave
// byte-identically.
func (spec JobSpec) validatePlacement(p Placement) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidJobSpec, fmt.Sprintf(format, args...))
	}
	if p.Device < CPUDevice {
		return fail("Placement.Device must be a GPU index or CPUDevice, got %d", p.Device)
	}
	if spec.Train && p.Device == CPUDevice && len(p.VNodes) == 0 {
		return fail("training job %q cannot be placed CPU-only", spec.Name)
	}
	seen := map[int]bool{}
	for _, g := range p.Fallbacks {
		if g < 0 {
			return fail("Placement fallback GPU index must be non-negative, got %d", g)
		}
		if g == p.Device {
			return fail("Placement fallback GPU %d duplicates the primary device", g)
		}
		if seen[g] {
			return fail("Placement fallback GPU %d listed twice", g)
		}
		seen[g] = true
	}
	if len(p.VNodes) == 0 {
		return nil
	}
	if !spec.Train {
		return fail("job %q: virtual nodes require a training job", spec.Name)
	}
	for _, g := range p.VNodes {
		if g < 0 {
			return fail("virtual node GPU index must be non-negative, got %d", g)
		}
	}
	if p.Device != p.VNodes[0] {
		return fail("Placement.Device %d must equal VNodes[0] %d (or be left zero)", p.Device, p.VNodes[0])
	}
	if len(p.VNodes) > spec.Batch {
		return fail("%d virtual nodes exceed batch %d (each needs >= 1 sample)", len(p.VNodes), spec.Batch)
	}
	return nil
}

// validateGang checks the gang surface against the materialized
// placement: a gang is a training job with at least two replicas on
// distinct GPUs, and Replicas must agree with any explicit VNodes.
func (spec JobSpec) validateGang(p Placement) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidJobSpec, fmt.Sprintf(format, args...))
	}
	if spec.Replicas < 0 {
		return fail("Replicas must be non-negative, got %d", spec.Replicas)
	}
	if spec.Replicas > 0 && !spec.Gang {
		return fail("Replicas is a gang width; set Gang too")
	}
	if !spec.Gang {
		return nil
	}
	if !spec.Train {
		return fail("gang job %q must be a training job", spec.Name)
	}
	if spec.Replicas > 0 && len(spec.Placement.VNodes) > 0 && spec.Replicas != len(spec.Placement.VNodes) {
		return fail("gang job %q: Replicas %d conflicts with %d Placement.VNodes", spec.Name, spec.Replicas, len(spec.Placement.VNodes))
	}
	if len(p.VNodes) < 2 {
		return fail("gang job %q needs at least two replicas (set Replicas or Placement.VNodes)", spec.Name)
	}
	seen := map[int]bool{}
	for _, g := range p.VNodes {
		if seen[g] {
			return fail("gang job %q lists GPU %d twice; replicas need distinct GPUs", spec.Name, g)
		}
		seen[g] = true
	}
	return nil
}

// Validate checks the spec's machine-independent invariants: a positive
// batch, a known model, non-negative device indices, a coherent
// placement, and a coherent workload mode. AddJob validates
// automatically (adding a range check against the simulation's machine);
// call Validate directly to check specs before building anything.
func (spec JobSpec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidJobSpec, fmt.Sprintf(format, args...))
	}
	if spec.Batch <= 0 {
		return fail("batch must be positive, got %d", spec.Batch)
	}
	if _, err := models.ByName(spec.Model); err != nil {
		return fail("%v", err)
	}
	p, err := spec.placement()
	if err != nil {
		return err
	}
	if spec.Placement.isZero() {
		if spec.GPU < 0 {
			return fail("GPU index must be non-negative, got %d", spec.GPU)
		}
		for _, g := range spec.FallbackGPUs {
			if g < 0 {
				return fail("fallback GPU index must be non-negative, got %d", g)
			}
		}
	} else if err := spec.validatePlacement(p); err != nil {
		return err
	}
	if err := spec.validateGang(p); err != nil {
		return err
	}
	if spec.ServeEvery < 0 {
		return fail("ServeEvery must be non-negative, got %v", spec.ServeEvery)
	}
	if spec.SLO < 0 {
		return fail("SLO must be non-negative, got %v", spec.SLO)
	}
	if spec.MaxBatch < 0 {
		return fail("MaxBatch must be non-negative, got %d", spec.MaxBatch)
	}
	if spec.BatchWait < 0 {
		return fail("BatchWait must be non-negative, got %v", spec.BatchWait)
	}
	if spec.BatchWait > 0 && spec.MaxBatch <= 1 {
		return fail("BatchWait needs MaxBatch > 1 to have a batch to wait for")
	}
	if spec.Train {
		if spec.ServeEvery > 0 || spec.ClosedLoop || spec.Saturated || spec.PoissonArrivals || spec.RequestDriven {
			return fail("training job %q must not set serving modes (ServeEvery/ClosedLoop/Saturated/PoissonArrivals/RequestDriven)", spec.Name)
		}
		if spec.SLO > 0 || spec.MaxBatch > 0 {
			return fail("training job %q must not set serving SLO or MaxBatch", spec.Name)
		}
		return nil
	}
	if spec.ClosedLoop && spec.Saturated {
		return fail("ClosedLoop and Saturated are mutually exclusive")
	}
	if spec.Saturated && (spec.ServeEvery > 0 || spec.PoissonArrivals) {
		return fail("Saturated ignores arrivals; do not set ServeEvery or PoissonArrivals")
	}
	if spec.ClosedLoop && (spec.ServeEvery > 0 || spec.PoissonArrivals) {
		return fail("ClosedLoop generates its own arrivals; do not set ServeEvery or PoissonArrivals")
	}
	if spec.PoissonArrivals && spec.ServeEvery <= 0 {
		return fail("PoissonArrivals needs ServeEvery as the mean inter-arrival time")
	}
	if spec.RequestDriven && (spec.ServeEvery > 0 || spec.ClosedLoop || spec.Saturated || spec.PoissonArrivals) {
		return fail("RequestDriven takes arrivals only from Offer; do not set ServeEvery, ClosedLoop, Saturated, or PoissonArrivals")
	}
	if spec.ServeEvery == 0 && !spec.ClosedLoop && !spec.Saturated && !spec.RequestDriven {
		return fail("serving job %q has no arrival process; set ServeEvery, ClosedLoop, Saturated, or RequestDriven", spec.Name)
	}
	return nil
}

func (spec JobSpec) toConfig() (workload.Config, error) {
	model, err := models.ByName(spec.Model)
	if err != nil {
		return workload.Config{}, err
	}
	kind := workload.KindServing
	if spec.Train {
		kind = workload.KindTraining
	}
	p, err := spec.placement()
	if err != nil {
		return workload.Config{}, err
	}
	dev := device.GPUID(p.Device)
	if p.Device == CPUDevice {
		dev = device.CPUID
	}
	var fallbacks []device.ID
	for _, idx := range p.Fallbacks {
		fallbacks = append(fallbacks, device.GPUID(idx))
	}
	if p.AllowCPU {
		fallbacks = append(fallbacks, device.CPUID)
	}
	var vnodes []device.ID
	for _, idx := range p.VNodes {
		vnodes = append(vnodes, device.GPUID(idx))
	}
	return workload.Config{
		Name:            spec.Name,
		Model:           model,
		Batch:           spec.Batch,
		Kind:            kind,
		Priority:        spec.Priority,
		Device:          dev,
		Fallbacks:       fallbacks,
		VNodes:          vnodes,
		Gang:            spec.Gang,
		ArrivalEvery:    spec.ServeEvery,
		PoissonArrivals: spec.PoissonArrivals,
		ArrivalSeed:     spec.ArrivalSeed,
		ClosedLoop:      spec.ClosedLoop,
		Saturated:       spec.Saturated,
		SLO:             spec.SLO,
		MaxBatch:        spec.MaxBatch,
		BatchWait:       spec.BatchWait,
		Eager:           spec.Eager,
		Fuse:            spec.Fuse,
	}, nil
}

// Job is a handle on a running DL job.
type Job struct {
	inner *workload.Job
}

// Name returns the job's name.
func (j *Job) Name() string { return j.inner.Cfg.Name }

// Iterations returns completed training steps or compute launches (one
// per micro-batch for a batched serving job).
func (j *Job) Iterations() int { return j.inner.Iterations }

// Throughput returns images (or sequences) per second over the window.
// For request-driven serving it counts served requests (a fused
// micro-batch launch carries several), so batched and unbatched runs
// compare on the same scale; training and saturated serving count
// iterations times the mini-batch size as before.
func (j *Job) Throughput(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	if j.inner.Cfg.Kind == workload.KindServing && !j.inner.Cfg.Saturated {
		return float64(j.inner.ServingStats().Served*j.inner.Cfg.Batch) / window.Seconds()
	}
	return float64(j.inner.Iterations*j.inner.Cfg.Batch) / window.Seconds()
}

// P95Latency returns the 95th-percentile serving latency.
func (j *Job) P95Latency() time.Duration { return j.inner.Latencies.Percentile(95) }

// P99Latency returns the 99th-percentile serving latency.
func (j *Job) P99Latency() time.Duration { return j.inner.Latencies.Percentile(99) }

// MeanLatency returns the mean serving latency.
func (j *Job) MeanLatency() time.Duration { return j.inner.Latencies.Mean() }

// Requests returns the number of latency samples recorded.
func (j *Job) Requests() int { return j.inner.Latencies.Count() }

// Restarts returns how many times the job recovered from an injected
// fault (crash-and-restart or fault-driven migration). Always zero under
// the baselines — they have no recovery path.
func (j *Job) Restarts() int { return j.inner.Restarts }

// ServingStats snapshots a serving job's request accounting: what the
// arrival process offered, what admission control shed, what was served,
// how much of it met the SLO, and how many micro-batches formed.
type ServingStats struct {
	Offered int
	Shed    int
	Served  int
	SLOMet  int
	Batches int
}

// ServingStats returns the job's request counters; all zero for training.
func (j *Job) ServingStats() ServingStats {
	s := j.inner.ServingStats()
	return ServingStats{
		Offered: s.Offered,
		Shed:    s.Shed,
		Served:  s.Served,
		SLOMet:  s.SLOMet,
		Batches: s.Batches,
	}
}

// Shed returns how many requests admission control rejected.
func (j *Job) Shed() int { return j.inner.ServingStats().Shed }

// Offer presents one externally generated request to a request-driven
// serving job at the current virtual time — the entry point for
// trace-driven traffic (swrun -traffic, scenario "traffic" blocks). It
// runs the job's normal admission control and reports whether the
// request was accepted.
func (j *Job) Offer() bool { return j.inner.Offer() }

// SLOAttainment returns the percentage of served requests that met the
// job's SLO; zero when nothing was served or no SLO is set.
func (j *Job) SLOAttainment() float64 { return j.inner.ServingStats().AttainmentPct() }

// MeanBatch returns the average micro-batch size across all launches.
func (j *Job) MeanBatch() float64 { return j.inner.ServingStats().MeanBatch() }

// VNodes returns the job's current virtual-node count; legacy jobs
// report their single implicit vnode.
func (j *Job) VNodes() int { return j.inner.Binding().Len() }

// Binding renders the job's current virtual-node binding with per-device
// batch shares, e.g. "gpu:0(10)+gpu:1(22)". It reflects runtime grows,
// shrinks, rebinds, drains, and fault healing.
func (j *Job) Binding() string { return j.inner.Binding().String() }

// Elastic reports whether the job was admitted with virtual nodes and
// therefore supports Grow/Shrink/Rebind.
func (j *Job) Elastic() bool { return j.inner.Elastic() }

// Gang reports whether the job is a synchronous data-parallel gang: its
// replicas compute batch shares independently, then meet at a ring
// all-reduce step barrier priced on the machine's interconnect topology.
// Gangs are suspended and resumed as one unit, never a lone replica.
func (j *Job) Gang() bool { return j.inner.Gang() }

// Crashed reports whether the job died (e.g. OOM under a baseline).
func (j *Job) Crashed() bool { return j.inner.Crashed() }

// Err returns the crash cause, nil while healthy.
func (j *Job) Err() error { return j.inner.CrashErr }
