// Command swlint runs the project's static-analysis suite: the custom
// determinism and concurrency checks that keep the simulation replayable
// (byte-identical serial vs -parallel sweeps) and the control plane
// deadlock-free. See internal/analysis and docs/architecture.md
// ("Determinism & concurrency invariants") for the rules.
//
// Usage:
//
//	swlint [-run analyzer,...] [./...]
//	swlint -list
//
// swlint always analyzes the whole module (the only supported pattern is
// ./..., accepted for muscle-memory compatibility with go vet). Findings
// print in file:line:col: analyzer: message form; the exit status is 1
// when any finding survives //swlint:allow suppression. Test files are
// not analyzed: tests may use wall clock, goroutines, and literal seeds
// freely.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"switchflow/internal/analysis"
	"switchflow/internal/analysis/load"
	"switchflow/internal/analysis/suite"
)

func main() {
	var (
		list = flag.Bool("list", false, "list analyzers and exit")
		run  = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	)
	flag.Parse()
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	findings, err := lint(*run, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "swlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func lint(run string, args []string) ([]analysis.Finding, error) {
	for _, arg := range args {
		if arg != "./..." {
			return nil, fmt.Errorf("unsupported package pattern %q (swlint analyzes the whole module; use ./...)", arg)
		}
	}
	analyzers, err := selectAnalyzers(run)
	if err != nil {
		return nil, err
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modulePath, err := load.ModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	l := load.New(root, modulePath)
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	var findings []analysis.Finding
	for _, p := range pkgs {
		fs, err := analysis.Run(l.Fset(), p.Files, p.Types, p.Info, analyzers, suite.Names())
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	analysis.SortFindings(findings)
	return findings, nil
}

func selectAnalyzers(run string) ([]*analysis.Analyzer, error) {
	all := suite.Analyzers()
	if run == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run swlint -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
