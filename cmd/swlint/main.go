// Command swlint runs the project's static-analysis suite: the custom
// determinism, concurrency, and flow-invariant checks that keep the
// simulation replayable (byte-identical serial vs -parallel sweeps), the
// control plane deadlock-free, and the fleet layer's conservation and
// epoch invariants honest. See internal/analysis and
// docs/architecture.md ("Determinism & concurrency invariants") for the
// rules.
//
// Usage:
//
//	swlint [-run analyzer,...] [-json] [./...]
//	swlint -list
//
// swlint always analyzes the whole module (the only supported pattern is
// ./..., accepted for muscle-memory compatibility with go vet). Findings
// print in file:line:col: analyzer: message form, or as a JSON array
// with -json for machine consumption (CI problem matchers); the exit
// status is 1 when any finding survives //swlint:allow suppression.
// Full-suite runs also report allow directives that no longer suppress
// anything, so stale suppressions cannot accumulate; -run subset runs
// skip that check, since other analyzers' directives are legitimately
// idle there. Test files are not analyzed: tests may use wall clock,
// goroutines, and literal seeds freely.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"switchflow/internal/analysis"
	"switchflow/internal/analysis/load"
	"switchflow/internal/analysis/suite"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list analyzers and exit")
		run      = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonFlag = flag.Bool("json", false, "emit findings as a JSON array")
	)
	flag.Parse()
	if *list {
		for _, a := range suite.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}
	findings, err := lint(*run, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "swlint:", err)
		os.Exit(2)
	}
	if *jsonFlag {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintln(os.Stderr, "swlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "swlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// jsonFinding is the machine-readable shape of one finding, stable for
// CI consumers.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, findings []analysis.Finding) error {
	out := make([]jsonFinding, len(findings))
	for i, f := range findings {
		out[i] = jsonFinding{
			File:     f.Position.Filename,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func lint(run string, args []string) ([]analysis.Finding, error) {
	for _, arg := range args {
		if arg != "./..." {
			return nil, fmt.Errorf("unsupported package pattern %q (swlint analyzes the whole module; use ./...)", arg)
		}
	}
	analyzers, err := selectAnalyzers(run)
	if err != nil {
		return nil, err
	}
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modulePath, err := load.ModuleRoot(cwd)
	if err != nil {
		return nil, err
	}
	l := load.New(root, modulePath)
	pkgs, err := l.LoadModule()
	if err != nil {
		return nil, err
	}
	units := make([]*analysis.PackageUnit, len(pkgs))
	for i, p := range pkgs {
		units[i] = &analysis.PackageUnit{Path: p.Path, Files: p.Files, Pkg: p.Types, Info: p.Info}
	}
	prog := analysis.NewProgram(l.Fset(), units)
	// Unused-suppression reporting only makes sense when every analyzer
	// ran: a subset run leaves other analyzers' directives idle.
	reportUnused := run == ""
	return analysis.RunProgram(prog, analyzers, suite.Names(), reportUnused)
}

func selectAnalyzers(run string) ([]*analysis.Analyzer, error) {
	all := suite.Analyzers()
	if run == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(run, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (run swlint -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
