// Command swbench regenerates the tables and figures of the SwitchFlow
// paper's evaluation (§5) on the simulated substrate.
//
// Usage:
//
//	swbench -exp all
//	swbench -exp f6 -requests 100
//	swbench -exp f8 -iters 200
//
// Experiments: f2, f3, f6, f7, f8, f9, f10, t1, preempt, ablation, chaos,
// elastic, gang, serving, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"switchflow/internal/experiments"
	"switchflow/internal/harness"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id: f2,f3,f6,f7,f8,f9,f10,t1,preempt,gandiva,load,serving,eager,fleet,ablation,chaos,elastic,gang,engine,all")
		iters      = flag.Int("iters", 200, "iterations per measurement (figures 3, 8, 9, 10)")
		requests   = flag.Int("requests", 200, "inference requests per cell (figure 6, preempt, ablation)")
		parallel   = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker goroutines for experiment sweeps (1 = serial)")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event file of the canned two-ResNet50 co-run and exit")
		benchOut   = flag.String("bench-out", "", "with -exp engine: write the benchmark JSON artifact to this path")
		benchSmoke = flag.Bool("bench-smoke", false, "with -exp engine: CI-sized run (fewer iterations, smaller fleets)")
		benchCheck = flag.String("bench-check", "", "with -exp engine: compare against this baseline JSON; exit 1 on >25% ratio regression")
		benchLabel = flag.String("bench-label", "dev", "with -exp engine: label stored in the JSON artifact")
		clients    = flag.Int("clients", 1_000_000, "with -exp fleet: simulated client population (aggregated, base rate stays fixed)")
		fleetWin   = flag.Duration("fleet-window", 75*time.Second, "with -exp fleet: virtual horizon of the fleet scenario")
	)
	flag.Parse()
	harness.SetParallelism(*parallel)
	if *traceOut != "" {
		if err := writeTrace(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			os.Exit(1)
		}
		return
	}
	if *exp == "engine" {
		opts := benchOpts{smoke: *benchSmoke, label: *benchLabel, out: *benchOut, check: *benchCheck}
		if err := engineBench(opts); err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *iters, *requests, *fleetWin, *clients); err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
}

// writeTrace runs the canned observability experiment (two ResNet50
// training jobs on a V100 under each scheduler) and writes the
// switchflow cell's Chrome trace-event JSON to path. The export is
// byte-identical regardless of -parallel.
func writeTrace(path string) error {
	results := experiments.ChromeTrace(5 * time.Second)
	for _, r := range results {
		fmt.Printf("trace: %-10s %6d kernel spans, %4d preemptions\n", r.Sched, r.Spans, r.Preempts)
	}
	for _, r := range results {
		if r.Sched != "switchflow" {
			continue
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := r.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: wrote %s (%d events, switchflow cell)\n", path, len(r.Events))
		return nil
	}
	return fmt.Errorf("no switchflow cell in trace results")
}

func run(exp string, iters, requests int, fleetWin time.Duration, clients int) error {
	all := map[string]func(){
		"t1":       func() { table1() },
		"f2":       func() { figure2() },
		"f3":       func() { figure3(iters) },
		"f6":       func() { figure6(requests) },
		"f7":       func() { figure7() },
		"f8":       func() { figure8(iters) },
		"f9":       func() { figure9(iters) },
		"f10":      func() { figure10(iters) },
		"preempt":  func() { preempt(requests) },
		"ablation": func() { ablation(requests) },
		"gandiva":  func() { gandiva(requests) },
		"load":     func() { load(requests) },
		"serving":  func() { serving() },
		"eager":    func() { eager() },
		"fleet":    func() { fleet(fleetWin, clients) },
		"chaos":    func() { chaos() },
		"elastic":  func() { elastic() },
		"gang":     func() { gang() },
	}
	if exp == "all" {
		for _, id := range []string{"t1", "f2", "f3", "f6", "f7", "f8", "f9", "f10", "preempt", "gandiva", "load", "serving", "eager", "fleet", "ablation", "chaos", "elastic", "gang"} {
			timed(id, all[id])
		}
		return nil
	}
	fn, ok := all[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	timed(exp, fn)
	return nil
}

// timed reports per-experiment wall-clock time on stderr, keeping stdout
// (the tables) byte-identical between serial and parallel runs.
func timed(id string, fn func()) {
	//swlint:allow simclock wall-clock timing is stderr-only progress reporting, never a simulation input
	start := time.Now()
	fn()
	//swlint:allow simclock elapsed wall time goes to stderr; stdout tables stay deterministic
	elapsed := time.Since(start).Seconds()
	fmt.Fprintf(os.Stderr, "swbench: %-8s %8.2fs wall (workers=%d)\n",
		id, elapsed, harness.Parallelism())
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func table1() {
	header("Table 1: model state transfer (GPU to GPU, PCIe 3.0 x16)")
	fmt.Printf("%-20s %12s %9s %12s %12s %12s\n",
		"model", "state MiB", "tensors", "transfer ms", "paper MiB", "paper ms")
	for _, r := range experiments.Table1() {
		fmt.Printf("%-20s %12.2f %9d %12.3f %12.2f %12.3f\n",
			r.Model, r.StatefulMB, r.Tensors, r.TransferMS, r.PaperMB, r.PaperMS)
	}
}

func figure2() {
	header("Figure 2: two ResNet50 training jobs sharing a V100 (threaded TF)")
	res := experiments.Figure2(10 * time.Second)
	fmt.Printf("solo: %.0f img/s; co-run: %.0f / %.0f img/s (paper: 226 -> 116)\n",
		res.SoloImgPerSec, res.CoRunImgPerSec[0], res.CoRunImgPerSec[1])
	fmt.Printf("kernel overlap fraction: %.3f (spatial sharing barely happens)\n",
		res.OverlapFraction)
	fmt.Println("timeline (first 2s, 1 col = 25ms):")
	_ = res.Timeline.RenderASCII(os.Stdout, 25*time.Millisecond, 80)
}

func figure3(iters int) {
	header(fmt.Sprintf("Figure 3: GPU idle fraction per session (avg of %d sessions)", iters))
	fmt.Printf("%-14s %-10s %-20s %6s %12s %12s %8s\n",
		"gpu", "mode", "model", "batch", "session ms", "gpu ms", "idle")
	for _, r := range experiments.Figure3(iters) {
		fmt.Printf("%-14s %-10s %-20s %6d %12.1f %12.1f %7.1f%%\n",
			r.GPU, r.Mode, r.Model, r.Batch, r.SessionMS, r.GPUBusyMS, r.IdleFrac*100)
	}
}

func figure6(requests int) {
	header(fmt.Sprintf("Figure 6: p95 inference tail latency, TF vs SwitchFlow (%d requests)", requests))
	fmt.Printf("%-20s %-14s %12s %12s %9s\n", "training (bg)", "inference", "tf p95 ms", "sf p95 ms", "speedup")
	for _, r := range experiments.Figure6(requests) {
		fmt.Printf("%-20s %-14s %12.1f %12.1f %8.2fx\n",
			r.TrainModel, r.InferModel, r.TFP95MS, r.SFP95MS, r.Speedup)
	}
}

func figure7() {
	header("Figure 7: throughput of two co-running training jobs (img/s)")
	fmt.Printf("%-4s %-12s %-18s %-18s %8s %8s %8s %8s %6s %-8s\n",
		"sub", "scheduler", "background", "model",
		"bg-solo", "bg-co", "md-solo", "md-co", "oom", "low-dev")
	for _, r := range experiments.Figure7() {
		fmt.Printf("%-4s %-12s %-18s %-18s %8.1f %8.1f %8.1f %8.1f %6v %-8s\n",
			r.Subfigure, r.Scheduler, r.Background, r.Model,
			r.BackgroundSolo, r.BackgroundCoRun, r.ModelSolo, r.ModelCoRun,
			r.OOM, r.LowDevice)
	}
}

func figure8(iters int) {
	header(fmt.Sprintf("Figure 8: input reuse, 2 identical models, %d iterations each", iters))
	fmt.Printf("%-14s %-10s %6s %-20s %12s %12s %9s\n",
		"gpu", "mode", "batch", "model", "timeslice s", "reuse s", "improve")
	for _, r := range experiments.Figure8(iters) {
		fmt.Printf("%-14s %-10s %6d %-20s %12.1f %12.1f %8.1f%%\n",
			r.GPU, r.Mode, r.Batch, r.Model, r.BaselineSec, r.ReuseSec, r.ImprovePct)
	}
}

func figure9(iters int) {
	header(fmt.Sprintf("Figure 9: input reuse among different models (V100, %d iterations)", iters))
	fmt.Printf("%-46s %6s %12s %12s %9s\n", "models", "batch", "timeslice s", "reuse s", "improve")
	for _, r := range experiments.Figure9(iters) {
		fmt.Printf("%-46s %6d %12.1f %12.1f %8.1f%%\n",
			strings.Join(r.Models, "+"), r.Batch, r.BaselineSec, r.ReuseSec, r.ImprovePct)
	}
}

func figure10(iters int) {
	header(fmt.Sprintf("Figure 10: interleaving independent models (V100, %d iterations)", iters))
	fmt.Printf("%-4s %-14s %-10s %-20s %12s %12s %9s\n",
		"sub", "partner", "p-mode", "model", "timeslice s", "switchflow s", "improve")
	for _, r := range experiments.Figure10(iters) {
		fmt.Printf("%-4s %-14s %-10s %-20s %12.1f %12.1f %8.1f%%\n",
			r.Subfigure, r.Partner, r.PartnerMode, r.Model, r.BaselineSec, r.SFSec, r.ImprovePct)
	}
}

func preempt(requests int) {
	header("Preemption overhead (§5.2.3)")
	fmt.Printf("%-14s %12s %10s %10s %10s %10s %12s %10s\n",
		"train model", "preemptions", "mean ms", "p95 ms", "max ms", "state MB", "transfer ms", "p95 serve")
	for _, model := range []string{"ResNet50", "VGG16", "InceptionV3", "MobileNetV2"} {
		r := experiments.PreemptionOverhead(model, requests)
		fmt.Printf("%-14s %12d %10.2f %10.2f %10.2f %10.1f %12.2f %10.1f\n",
			r.TrainModel, r.Preemptions, r.MeanGrantMS, r.P95GrantMS, r.MaxGrantMS,
			r.StateMB, r.TransferMS, r.ServedP95MS)
	}
}

func ablation(requests int) {
	header("Ablation: design choices of §3 (ResNet50 serve + VGG16 train, V100)")
	fmt.Printf("%-18s %12s %12s %12s  %s\n",
		"variant", "serve p95", "train img/s", "grant p95", "description")
	for _, r := range experiments.Ablation(requests) {
		fmt.Printf("%-18s %10.1fms %12.1f %10.2fms  %s\n",
			r.Variant, r.ServeP95MS, r.TrainImgPS, r.PreemptP95, r.Description)
	}
	header("Ablation: migration state transfer (Figure 7 e scenario)")
	fmt.Printf("%-16s %18s %18s\n", "variant", "high 1st step s", "low recovery s")
	for _, r := range experiments.AblationMigration() {
		fmt.Printf("%-16s %18.3f %18.3f\n", r.Variant, r.HighFirstStepSec, r.LowRecoverySec)
	}
}

func gandiva(requests int) {
	header("Preemption mechanisms: SwitchFlow vs Gandiva-style checkpointing (§6)")
	fmt.Printf("%-14s | %10s %10s %10s | %10s %10s %10s\n",
		"train model", "sf p95", "sf grant", "sf steps/s", "ckpt p95", "ckpt grant", "ck steps/s")
	for _, r := range experiments.Gandiva(requests) {
		fmt.Printf("%-14s | %8.1fms %8.1fms %10.2f | %8.1fms %8.1fms %10.2f\n",
			r.TrainModel, r.SFP95MS, r.SFGrantP95MS, r.SFTrainPS,
			r.CkptP95MS, r.CkptGrantP95MS, r.CkptTrainPS)
	}
}

func load(requests int) {
	header("Load sweep: Poisson inference + VGG16 training on a V100")
	fmt.Printf("%10s %12s %12s %12s %12s\n", "req/s", "tf p95 ms", "tf p99 ms", "sf p95 ms", "sf p99 ms")
	for _, r := range experiments.LoadSweep(requests) {
		fmt.Printf("%10.1f %12.1f %12.1f %12.1f %12.1f\n",
			r.RatePerSec, r.TFP95MS, r.TFP99MS, r.SFP95MS, r.SFP99MS)
	}
}

func serving() {
	header("Serving: SLO-aware dynamic batching + admission control (ResNet50, V100, 200ms SLO, 30s)")
	fmt.Printf("%10s | %10s %9s %9s %7s %7s %7s | %10s %9s %9s %7s %7s\n",
		"req/s",
		"b-goodput", "b-p95", "b-p99", "b-shed", "b-att%", "b-batch",
		"u-goodput", "u-p95", "u-p99", "u-shed", "u-att%")
	for _, r := range experiments.ServingSweep(30 * time.Second) {
		fmt.Printf("%10.1f | %10.1f %7.1fms %7.1fms %7d %6.1f%% %7.2f | %10.1f %7.1fms %7.1fms %7d %6.1f%%\n",
			r.RatePerSec,
			r.Batched.GoodputPS, r.Batched.P95MS, r.Batched.P99MS,
			r.Batched.Shed, r.Batched.AttainPct, r.Batched.MeanBatch,
			r.Unbatched.GoodputPS, r.Unbatched.P95MS, r.Unbatched.P99MS,
			r.Unbatched.Shed, r.Unbatched.AttainPct)
	}
}

func eager() {
	header("Execution modes: eager vs static vs fused-static (solo training, V100)")
	fmt.Printf("%-14s %6s %12s %12s %12s %10s %10s\n",
		"model", "batch", "eager img/s", "static", "fused", "static-x", "fused-x")
	for _, r := range experiments.EagerComparison() {
		fmt.Printf("%-14s %6d %12.1f %12.1f %12.1f %9.2fx %9.2fx\n",
			r.Model, r.Batch, r.EagerImgPS, r.StaticImgPS, r.FusedImgPS,
			r.StaticSpeedX, r.FusedSpeedX)
	}
}

func chaos() {
	header("Chaos: fault injection and recovery (60s; GPU 0 lost at 20s + seeded transients/stalls)")
	fmt.Printf("%-12s %5s %7s %8s %10s %7s %-8s %8s %6s %5s %5s %6s\n",
		"scheduler", "seed", "faults", "served", "p95 ms", "alive", "device", "train-it", "lost", "migr", "rest", "roll")
	for _, r := range experiments.Chaos([]int64{1, 2, 3}) {
		dev := r.ServeDevice
		if dev == "" {
			dev = "-"
		}
		fmt.Printf("%-12s %5d %7d %8d %10.1f %7v %-8s %8d %6d %5d %5d %6d\n",
			r.Scheduler, r.Seed, r.Injected, r.Served, r.ServeP95MS, r.ServeAlive, dev,
			r.TrainIters, r.JobsLost, r.Migrations, r.Restarts, r.IterationsLost)
	}
}

func elastic() {
	header("Elastic: virtual-node recovery vs checkpoint/restart (60s; gpu:0 drained or lost at 30s)")
	fmt.Printf("%-10s %-12s %8s %7s %6s %6s %6s %6s  %-20s\n",
		"mode", "scheduler", "train-it", "alive", "rest", "roll", "grows", "rebind", "binding")
	for _, r := range experiments.Elastic() {
		binding := r.Binding
		if binding == "" {
			binding = "-"
		}
		fmt.Printf("%-10s %-12s %8d %7v %6d %6d %6d %6d  %-20s\n",
			r.Mode, r.Scheduler, r.Iterations, r.Alive, r.Restarts, r.IterationsLost,
			r.Grows, r.Rebinds, binding)
	}
}

func gang() {
	header("Gang: data-parallel training with topology-priced ring all-reduce (30s, NVLink islands)")
	fmt.Printf("%-12s %8s %6s %10s %7s %7s %7s %7s %7s %8s\n",
		"mode", "train-it", "syncs", "sync ms", "places", "preempt", "resume", "stragl", "queued", "partial")
	for _, r := range experiments.Gang() {
		fmt.Printf("%-12s %8d %6d %10.3f %7d %7d %7d %7d %7d %8d\n",
			r.Mode, r.Iterations, r.AllReduces, r.MeanSyncMillis,
			r.GangPlaces, r.GangPreempts, r.GangResumes, r.Stragglers,
			r.QueuedWhole, r.PartialGangs)
	}
}

func fleet(window time.Duration, clients int) {
	header(fmt.Sprintf(
		"Fleet: million-user serving on 8 nodes / 16x V100 (%v window, %d clients, diurnal + 6x flash crowd)",
		window, clients))
	fmt.Printf("%-12s %-5s %9s %9s %7s %8s %9s %10s %4s %4s %4s %4s %5s %7s %9s %7s %7s %11s\n",
		"strategy", "auto", "offered", "routed", "drop", "shed", "served", "goodput/s",
		"out", "in", "shr", "grw", "repl", "gold%", "gold p99", "slvr%", "brnz%", "train img/s")
	for _, r := range experiments.Fleet(window, clients) {
		fmt.Printf("%-12s %-5v %9d %9d %7d %8d %9d %10.1f %4d %4d %4d %4d %5d %6.1f%% %9.1f %6.1f%% %6.1f%% %11.1f\n",
			r.Strategy, r.Autoscaled, r.Offered, r.Routed, r.Dropped, r.Shed, r.Served,
			r.GoodputPS, r.ScaleOuts, r.ScaleIns, r.Shrinks, r.Grows, r.FinalReplicas,
			r.Gold.AttainPct, r.Gold.WorstP99MS, r.Silver.AttainPct, r.Bronze.AttainPct,
			r.TrainImgPS)
	}
}
