// Engine benchmark suite: the measured perf trajectory behind the
// ROADMAP's fleet-scale ambitions. `swbench -exp engine` times the
// timing-wheel event queue against the PR-1 heap reference (micro) and
// the sharded fleet against a serial one-worker run (macro), and emits a
// structured JSON artifact. `make bench-trajectory` normalizes that into
// the committed BENCH_*.json baseline; CI runs a smoke-sized variant and
// fails when a machine-portable ratio regresses more than 25% against
// the baseline.
//
// Regression gating deliberately compares ratios, not nanoseconds: raw
// ns/event varies with the host, but wheel-vs-heap speedup at a given
// depth and sharded-vs-serial speedup at a given fleet size are
// properties of the code.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"switchflow/internal/cluster"
	"switchflow/internal/device"
	"switchflow/internal/harness"
	"switchflow/internal/models"
	"switchflow/internal/sim"
	"switchflow/internal/workload"
)

// benchSchema identifies the artifact format.
const benchSchema = "switchflow-bench/v1"

// benchReport is the JSON artifact. Field order is fixed, so the encoded
// bytes are stable apart from the measured numbers.
type benchReport struct {
	Schema string        `json:"schema"`
	Label  string        `json:"label"`
	Smoke  bool          `json:"smoke"`
	Micro  []microResult `json:"micro"`
	Macro  []macroResult `json:"macro"`
}

// microResult is one engine micro-benchmark: a (workload, depth, engine)
// cell.
type microResult struct {
	Name        string  `json:"name"`   // schedule_step | reschedule_storm
	Depth       int     `json:"depth"`  // standing queue depth
	Engine      string  `json:"engine"` // wheel | heap
	NsPerEvent  float64 `json:"ns_per_event"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	EventsPerS  float64 `json:"events_per_sec"`
}

// macroResult is one fleet macro-benchmark: the sharded cluster advanced
// serially (one worker) or in parallel.
type macroResult struct {
	Name       string  `json:"name"` // fleet
	Nodes      int     `json:"nodes"`
	Mode       string  `json:"mode"` // serial | sharded
	WallSec    float64 `json:"wall_sec"`
	Events     uint64  `json:"events"`
	EventsPerS float64 `json:"events_per_sec"`
	// Barrier imbalance across the node shards: max/mean and min/mean of
	// per-node events fired. The sharded advance waits for the slowest
	// shard at every epoch barrier, so a high max/mean bounds the
	// parallel speedup no matter how many workers run. Deterministic —
	// identical in serial and sharded modes.
	ShardMaxMean float64 `json:"shard_max_mean"`
	ShardMinMean float64 `json:"shard_min_mean"`
}

type benchOpts struct {
	smoke bool
	label string
	out   string
	check string
}

// engineBench runs the suite, prints a human table to stdout, writes the
// JSON artifact when requested, and compares against a baseline when
// requested. It returns an error on regression.
func engineBench(opts benchOpts) error {
	report := benchReport{Schema: benchSchema, Label: opts.label, Smoke: opts.smoke}

	// Micro iterations stay full-size even in smoke mode: at depth 64k
	// the wheel needs ~1M iterations to amortize its cascades, and a
	// short loop would understate the speedup the gate compares against
	// the full-size baseline. The loops cost milliseconds; the smoke
	// reduction trims only the (much slower) fleet macro.
	depths := []int{256, 4096, 65536}
	const microIters = 2_000_000
	fleets := []int{2, 4, 16}
	horizon := 20 * time.Second
	if opts.smoke {
		fleets = []int{2}
		horizon = 5 * time.Second
	}

	header("Engine micro: wheel vs heap (ns/event, steady state)")
	fmt.Printf("%-18s %8s %8s %12s %12s %9s\n", "workload", "depth", "engine", "ns/event", "allocs/op", "Mev/s")
	for _, depth := range depths {
		for _, m := range microPair("schedule_step", depth, microIters, benchScheduleStepWheel, benchScheduleStepHeap) {
			report.Micro = append(report.Micro, m)
			printMicro(m)
		}
		for _, m := range microPair("reschedule_storm", depth, microIters, benchStormWheel, benchStormHeap) {
			report.Micro = append(report.Micro, m)
			printMicro(m)
		}
	}

	header("Fleet macro: serial vs sharded epoch advance")
	fmt.Printf("%-8s %8s %10s %12s %12s %9s %9s %9s\n",
		"name", "nodes", "mode", "wall s", "events", "kev/s", "max/mean", "min/mean")
	for _, nodes := range fleets {
		for _, mode := range []string{"serial", "sharded"} {
			workers := 1
			if mode == "sharded" {
				workers = runtime.GOMAXPROCS(0)
			}
			wall, fired, maxMean, minMean := fleetMacro(nodes, workers, horizon)
			m := macroResult{
				Name: "fleet", Nodes: nodes, Mode: mode,
				WallSec: wall.Seconds(), Events: fired,
				EventsPerS:   float64(fired) / wall.Seconds(),
				ShardMaxMean: maxMean, ShardMinMean: minMean,
			}
			report.Macro = append(report.Macro, m)
			fmt.Printf("%-8s %8d %10s %12.3f %12d %9.1f %9.3f %9.3f\n",
				m.Name, m.Nodes, m.Mode, m.WallSec, m.Events, m.EventsPerS/1e3,
				m.ShardMaxMean, m.ShardMinMean)
		}
	}

	printSpeedups(report)

	if opts.out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(opts.out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "swbench: wrote %s\n", opts.out)
	}
	if opts.check != "" {
		base, err := readBenchReport(opts.check)
		if err != nil {
			return fmt.Errorf("baseline %s: %w", opts.check, err)
		}
		if err := checkRegression(report, base); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "swbench: no regression against %s\n", opts.check)
	}
	return nil
}

func printMicro(m microResult) {
	fmt.Printf("%-18s %8d %8s %12.2f %12.3f %9.2f\n",
		m.Name, m.Depth, m.Engine, m.NsPerEvent, m.AllocsPerOp, m.EventsPerS/1e6)
}

// microPair measures one workload at one depth on both engines.
func microPair(name string, depth, iters int, wheel, heap func(depth, iters int) (time.Duration, float64)) []microResult {
	out := make([]microResult, 0, 2)
	for _, eng := range []string{"wheel", "heap"} {
		fn := wheel
		if eng == "heap" {
			fn = heap
		}
		elapsed, allocs := fn(depth, iters)
		ns := float64(elapsed.Nanoseconds()) / float64(iters)
		out = append(out, microResult{
			Name: name, Depth: depth, Engine: eng,
			NsPerEvent: ns, AllocsPerOp: allocs, EventsPerS: 1e9 / ns,
		})
	}
	return out
}

// stopwatch returns the elapsed wall time since its creation. Wall time
// here is the measurement itself, never a simulation input.
func stopwatch() func() time.Duration {
	//swlint:allow simclock benchmark harness measures host wall time by definition
	start := time.Now()
	return func() time.Duration {
		//swlint:allow simclock benchmark harness measures host wall time by definition
		return time.Since(start)
	}
}

func benchScheduleStepWheel(depth, iters int) (time.Duration, float64) {
	e := sim.NewEngine()
	fn := func() {}
	d := time.Duration(depth)
	for i := time.Duration(0); i < d; i++ {
		e.Schedule(i, fn)
	}
	// Warm the structure through its first full drain-and-refill.
	for i := 0; i < depth; i++ {
		e.Schedule(e.Now()+d, fn)
		e.Step()
	}
	elapsed := stopwatch()
	for i := 0; i < iters; i++ {
		e.Schedule(e.Now()+d, fn)
		e.Step()
	}
	total := elapsed()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+d, fn)
		e.Step()
	})
	return total, allocs
}

func benchScheduleStepHeap(depth, iters int) (time.Duration, float64) {
	e := sim.NewHeapEngine()
	fn := func() {}
	d := time.Duration(depth)
	for i := time.Duration(0); i < d; i++ {
		e.Schedule(i, fn)
	}
	for i := 0; i < depth; i++ {
		e.Schedule(e.Now()+d, fn)
		e.Step()
	}
	elapsed := stopwatch()
	for i := 0; i < iters; i++ {
		e.Schedule(e.Now()+d, fn)
		e.Step()
	}
	total := elapsed()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now()+d, fn)
		e.Step()
	})
	return total, allocs
}

func benchStormWheel(depth, iters int) (time.Duration, float64) {
	e := sim.NewEngine()
	fn := func() {}
	d := time.Duration(depth)
	for i := time.Duration(0); i < d; i++ {
		e.Schedule(i, fn)
	}
	pending := make([]sim.Event, 0, 64)
	cycle := func() {
		if len(pending) == cap(pending) {
			for _, ev := range pending {
				ev.Cancel()
			}
			pending = pending[:0]
		}
		pending = append(pending, e.Schedule(e.Now()+d/2, fn))
		e.Schedule(e.Now()+d, fn)
		e.Step()
	}
	for i := 0; i < depth; i++ {
		cycle()
	}
	elapsed := stopwatch()
	for i := 0; i < iters; i++ {
		cycle()
	}
	total := elapsed()
	allocs := testing.AllocsPerRun(1000, cycle)
	return total, allocs
}

func benchStormHeap(depth, iters int) (time.Duration, float64) {
	e := sim.NewHeapEngine()
	fn := func() {}
	d := time.Duration(depth)
	for i := time.Duration(0); i < d; i++ {
		e.Schedule(i, fn)
	}
	pending := make([]sim.HeapEvent, 0, 64)
	cycle := func() {
		if len(pending) == cap(pending) {
			for _, ev := range pending {
				ev.Cancel()
			}
			pending = pending[:0]
		}
		pending = append(pending, e.Schedule(e.Now()+d/2, fn))
		e.Schedule(e.Now()+d, fn)
		e.Step()
	}
	for i := 0; i < depth; i++ {
		cycle()
	}
	elapsed := stopwatch()
	for i := 0; i < iters; i++ {
		cycle()
	}
	total := elapsed()
	allocs := testing.AllocsPerRun(1000, cycle)
	return total, allocs
}

// fleetMacro advances a collocated training+serving fleet to the horizon
// with the given worker count and reports wall time, total engine events
// fired across the nodes, and the per-shard barrier imbalance (max/mean
// and min/mean of per-node fired counts).
func fleetMacro(nodes, workers int, horizon time.Duration) (time.Duration, uint64, float64, float64) {
	prev := harness.SetParallelism(workers)
	defer harness.SetParallelism(prev)

	c := cluster.New(cluster.Collocate{}, nodes, device.ClassV100, device.ClassV100)
	trainModels := []string{"ResNet50", "VGG16", "InceptionV3", "DenseNet121"}
	serveModels := []string{"ResNet50", "MobileNetV2", "DenseNet121", "InceptionV3"}
	for i := 0; i < nodes*2; i++ {
		model := trainModels[i%len(trainModels)]
		c.Submit(time.Duration(i)*cluster.DefaultEpoch, workload.Config{
			Name: fmt.Sprintf("train-%d-%s", i, model), Model: mustModel(model), Batch: 32,
			Kind: workload.KindTraining, Priority: 1,
		})
	}
	for i := 0; i < nodes*3; i++ {
		model := serveModels[i%len(serveModels)]
		c.Submit(time.Duration(i)*cluster.DefaultEpoch, workload.Config{
			Name: fmt.Sprintf("serve-%d-%s", i, model), Model: mustModel(model), Batch: 1,
			Kind: workload.KindServing, Priority: 2,
			ArrivalEvery:    150 * time.Millisecond,
			PoissonArrivals: true,
			ArrivalSeed:     int64(100 + i),
			PerImageCPU:     10 * time.Millisecond,
		})
	}
	elapsed := stopwatch()
	c.RunUntil(horizon)
	wall := elapsed()
	var fired, max uint64
	min := ^uint64(0)
	for _, n := range c.Nodes() {
		f := n.Engine().Fired()
		fired += f
		if f > max {
			max = f
		}
		if f < min {
			min = f
		}
	}
	mean := float64(fired) / float64(len(c.Nodes()))
	return wall, fired, float64(max) / mean, float64(min) / mean
}

func mustModel(name string) *models.Spec {
	s, err := models.ByName(name)
	if err != nil {
		panic(err)
	}
	return s
}

// printSpeedups prints the machine-portable ratios the regression gate
// uses.
func printSpeedups(r benchReport) {
	header("Speedups (machine-portable regression metrics)")
	for _, name := range []string{"schedule_step", "reschedule_storm"} {
		for _, depth := range microDepths(r, name) {
			if s, ok := microSpeedup(r, name, depth); ok {
				fmt.Printf("wheel vs heap  %-18s depth %6d: %5.2fx\n", name, depth, s)
			}
		}
	}
	for _, nodes := range macroFleets(r) {
		if s, ok := macroSpeedup(r, nodes); ok {
			fmt.Printf("sharded vs serial fleet, %d nodes: %5.2fx\n", nodes, s)
		}
	}
}

func microDepths(r benchReport, name string) []int {
	var out []int
	seen := map[int]bool{}
	for _, m := range r.Micro {
		if m.Name == name && !seen[m.Depth] {
			seen[m.Depth] = true
			out = append(out, m.Depth)
		}
	}
	return out
}

func macroFleets(r benchReport) []int {
	var out []int
	seen := map[int]bool{}
	for _, m := range r.Macro {
		if !seen[m.Nodes] {
			seen[m.Nodes] = true
			out = append(out, m.Nodes)
		}
	}
	return out
}

// microSpeedup returns heap-ns / wheel-ns for one cell: >1 means the
// wheel wins.
func microSpeedup(r benchReport, name string, depth int) (float64, bool) {
	var wheel, heap float64
	for _, m := range r.Micro {
		if m.Name != name || m.Depth != depth {
			continue
		}
		switch m.Engine {
		case "wheel":
			wheel = m.NsPerEvent
		case "heap":
			heap = m.NsPerEvent
		}
	}
	if wheel <= 0 || heap <= 0 {
		return 0, false
	}
	return heap / wheel, true
}

// macroSpeedup returns serial-wall / sharded-wall for one fleet size.
func macroSpeedup(r benchReport, nodes int) (float64, bool) {
	var serial, sharded float64
	for _, m := range r.Macro {
		if m.Name != "fleet" || m.Nodes != nodes {
			continue
		}
		switch m.Mode {
		case "serial":
			serial = m.WallSec
		case "sharded":
			sharded = m.WallSec
		}
	}
	if serial <= 0 || sharded <= 0 {
		return 0, false
	}
	return serial / sharded, true
}

// wheelAllocs returns the wheel's allocs/op for one cell.
func wheelAllocs(r benchReport, name string, depth int) (float64, bool) {
	for _, m := range r.Micro {
		if m.Name == name && m.Depth == depth && m.Engine == "wheel" {
			return m.AllocsPerOp, true
		}
	}
	return 0, false
}

func readBenchReport(path string) (benchReport, error) {
	var r benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, err
	}
	if r.Schema != benchSchema {
		return r, fmt.Errorf("schema %q, want %q", r.Schema, benchSchema)
	}
	return r, nil
}

// regressionTolerance is how much of the baseline ratio must survive: a
// current speedup below baseline*0.75 (>25% regression) fails.
const regressionTolerance = 0.75

// macroFloor is the absolute sharded-vs-serial floor: wall-clock ratios
// depend on the host's core count, so the macro gate only insists the
// sharded fleet is not dramatically slower than serial.
const macroFloor = 0.75

// checkRegression compares cur against base on the portable ratios.
// Cells present in only one report are skipped, so the suite can grow
// without invalidating old baselines.
func checkRegression(cur, base benchReport) error {
	var failures []string
	for _, name := range []string{"schedule_step", "reschedule_storm"} {
		for _, depth := range microDepths(base, name) {
			bs, ok1 := microSpeedup(base, name, depth)
			cs, ok2 := microSpeedup(cur, name, depth)
			if ok1 && ok2 && cs < bs*regressionTolerance {
				failures = append(failures, fmt.Sprintf(
					"%s depth %d: wheel speedup %.2fx < %.2fx (baseline %.2fx * %.2f)",
					name, depth, cs, bs*regressionTolerance, bs, regressionTolerance))
			}
			ba, ok1 := wheelAllocs(base, name, depth)
			ca, ok2 := wheelAllocs(cur, name, depth)
			if ok1 && ok2 && ca > ba+0.01 {
				failures = append(failures, fmt.Sprintf(
					"%s depth %d: wheel allocs/op %.3f > baseline %.3f",
					name, depth, ca, ba))
			}
		}
	}
	for _, nodes := range macroFleets(base) {
		if cs, ok := macroSpeedup(cur, nodes); ok && cs < macroFloor {
			failures = append(failures, fmt.Sprintf(
				"fleet %d nodes: sharded/serial %.2fx < floor %.2f", nodes, cs, macroFloor))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "swbench: REGRESSION:", f)
		}
		return fmt.Errorf("%d benchmark regression(s)", len(failures))
	}
	return nil
}
