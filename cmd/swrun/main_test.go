package main

import "testing"

func TestParseJob(t *testing.T) {
	tests := []struct {
		give       string
		wantModel  string
		wantBatch  int
		wantPrio   int
		wantGPU    int
		wantTrain  bool
		wantClosed bool
		wantSat    bool
	}{
		{give: "train:VGG16:32:1", wantModel: "VGG16", wantBatch: 32, wantPrio: 1, wantTrain: true},
		{give: "serve:ResNet50:1:2", wantModel: "ResNet50", wantBatch: 1, wantPrio: 2, wantClosed: true},
		{give: "infer:MobileNetV2:128", wantModel: "MobileNetV2", wantBatch: 128, wantSat: true},
		{give: "train:ResNet50:16:1@1", wantModel: "ResNet50", wantBatch: 16, wantPrio: 1, wantGPU: 1, wantTrain: true},
	}
	for _, tt := range tests {
		t.Run(tt.give, func(t *testing.T) {
			spec, err := parseJob(tt.give)
			if err != nil {
				t.Fatal(err)
			}
			if spec.Model != tt.wantModel || spec.Batch != tt.wantBatch ||
				spec.Priority != tt.wantPrio || spec.GPU != tt.wantGPU {
				t.Fatalf("spec = %+v", spec)
			}
			if spec.Train != tt.wantTrain || spec.ClosedLoop != tt.wantClosed || spec.Saturated != tt.wantSat {
				t.Fatalf("mode flags = %+v", spec)
			}
		})
	}
}

func TestParseJobTrainingGetsFallbacks(t *testing.T) {
	spec, err := parseJob("train:ResNet50:32:1@1")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.FallbackCPU {
		t.Error("training job missing CPU fallback")
	}
	for _, gpu := range spec.FallbackGPUs {
		if gpu == 1 {
			t.Error("fallbacks include the preferred GPU")
		}
	}
}

func TestParseJobErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"train:VGG16",
		"train:VGG16:x",
		"train:VGG16:32:y",
		"fly:VGG16:32",
		"train:VGG16:32:1@x",
	} {
		if _, err := parseJob(bad); err == nil {
			t.Errorf("parseJob(%q) accepted", bad)
		}
	}
}

func TestMachineSpecNames(t *testing.T) {
	for _, name := range []string{"v100", "2gpu", "tx2", "V100"} {
		if _, err := machineSpec(name); err != nil {
			t.Errorf("machineSpec(%q): %v", name, err)
		}
	}
	if _, err := machineSpec("abacus"); err == nil {
		t.Error("machineSpec(abacus) accepted")
	}
}
