// Command swrun runs an ad-hoc collocation scenario described on the
// command line and reports per-job outcomes.
//
// Jobs are comma-separated specs of the form
//
//	kind:model:batch[:prio][@gpu]
//
// where kind is train, serve (closed loop), or infer (saturated), e.g.
//
//	swrun -machine v100 -sched switchflow \
//	      -jobs train:VGG16:32:1,serve:ResNet50:1:2 -for 30s
//
// The serving flags reshape every serve job: -serve-every switches it to
// an open-loop request stream (optionally Poisson via -poisson and
// -arrival-seed), -slo enables admission control, and -max-batch with
// -batch-wait enables dynamic micro-batching:
//
//	swrun -jobs serve:ResNet50:1:2 -serve-every 10ms -poisson \
//	      -slo 200ms -max-batch 8 -batch-wait 5ms -for 30s
//
// The elastic flags exercise virtual-node placement (SwitchFlow only):
// -vnodes splits every training job across the listed GPUs, -resize
// grows/shrinks a job's virtual-node count mid-run, and -drain vacates a
// GPU administratively so its jobs rebind or migrate:
//
//	swrun -machine 2gpu -jobs train:ResNet50:16:1 -vnodes 0 \
//	      -resize train-ResNet50=2@10s -drain 0@20s -for 60s
//
// The gang flag turns every training job into a synchronous
// data-parallel gang (SwitchFlow only): N replicas on consecutive GPUs
// meet at a topology-priced ring all-reduce every step and are
// preempted or resumed as one unit. The NVLink machine gives the
// all-reduce fast islands to run on:
//
//	swrun -machine nvlink -jobs train:ResNet50:32:1 -gang 2 -for 30s
//
// The traffic flags replace the serve jobs' own arrival clocks with one
// aggregate open-loop trace — a base rate shaped by a diurnal sinusoid
// and flash-crowd spikes, split across the serve jobs by Zipf share in
// listing order (the same generator the fleet experiment uses):
//
//	swrun -jobs serve:ResNet50:1:2,serve:VGG16:1:2 -traffic 200 \
//	      -diurnal 60s/0.35 -spike 6@20s/3s/8s/4s \
//	      -slo 200ms -max-batch 4 -batch-wait 2ms -for 60s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"switchflow"
	"switchflow/internal/control"
)

func main() {
	var (
		machineFlag  = flag.String("machine", "v100", "machine: v100, nvlink, 2gpu, tx2, or a GPU name")
		schedFlag    = flag.String("sched", "switchflow", "scheduler: switchflow, threaded, timeslice, mps")
		jobsFlag     = flag.String("jobs", "train:ResNet50:16:1", "comma-separated job specs")
		window       = flag.Duration("for", 30*time.Second, "virtual time to run")
		scenarioFlag = flag.String("scenario", "", "JSON scenario file (overrides the other flags)")
		faultSeed    = flag.Int64("fault-seed", 0, "inject a seeded random fault mix (0 = none)")
		loseGPU      = flag.String("lose-gpu", "", "inject a device loss, as gpu@time (e.g. 0@10s)")
		ckptEvery    = flag.Duration("checkpoint-every", 0, "SwitchFlow host-checkpoint interval (0 = default)")
		serveEvery   = flag.Duration("serve-every", 0, "make serve jobs open-loop with this arrival period (0 = closed loop)")
		poisson      = flag.Bool("poisson", false, "draw Poisson inter-arrival times with mean -serve-every")
		arrivalSeed  = flag.Int64("arrival-seed", 1, "seed for the -poisson arrival process")
		slo          = flag.Duration("slo", 0, "serving latency SLO; admission control sheds beyond it (0 = admit all)")
		maxBatch     = flag.Int("max-batch", 0, "fuse up to this many requests per compute launch (0 = no batching)")
		batchWait    = flag.Duration("batch-wait", 0, "max wait for a sub-target micro-batch to fill")
		vnodesFlag   = flag.String("vnodes", "", "split training jobs across these GPUs as virtual nodes, e.g. 0,1 (switchflow only)")
		gangFlag     = flag.Int("gang", 0, "make training jobs data-parallel gangs of this many replicas; with -vnodes those GPUs are the gang (switchflow only)")
		drainFlag    = flag.String("drain", "", "drain GPUs mid-run, as gpu@time[,gpu@time...] (e.g. 0@20s)")
		resizeFlag   = flag.String("resize", "", "resize elastic jobs mid-run, as job=vnodes@time[,...] (e.g. train-ResNet50=2@10s)")
		trafficRPS   = flag.Float64("traffic", 0, "drive serve jobs with an aggregate open-loop trace at this rps (0 = off)")
		clientsFlag  = flag.Int("clients", 1_000_000, "client population the -traffic rate aggregates")
		diurnalFlag  = flag.String("diurnal", "", "-traffic diurnal curve, as period/minFraction (e.g. 60s/0.35)")
		spikeFlag    = flag.String("spike", "", "-traffic flash crowds, as mag@start/ramp/hold/decay[,...] (e.g. 6@20s/3s/8s/4s)")
		trafficSeed  = flag.Int64("traffic-seed", 1, "seed for the -traffic arrival streams")
	)
	flag.Parse()
	serving := servingOpts{
		every: *serveEvery, poisson: *poisson, seed: *arrivalSeed,
		slo: *slo, maxBatch: *maxBatch, batchWait: *batchWait,
	}
	traf := trafficOpts{
		rps: *trafficRPS, clients: *clientsFlag, seed: *trafficSeed,
		diurnal: *diurnalFlag, spikes: *spikeFlag,
	}
	var err error
	if *scenarioFlag != "" {
		err = runScenario(*scenarioFlag)
	} else {
		err = run(*machineFlag, *schedFlag, *jobsFlag, *window, *faultSeed, *loseGPU, *ckptEvery, serving,
			*vnodesFlag, *gangFlag, *drainFlag, *resizeFlag, traf)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "swrun:", err)
		os.Exit(1)
	}
}

// servingOpts reshape every serve job from the command line.
type servingOpts struct {
	every     time.Duration
	poisson   bool
	seed      int64
	slo       time.Duration
	maxBatch  int
	batchWait time.Duration
}

// apply rewrites a serve job's arrival process and serving policy. Only
// request-driven jobs are touched; train and infer specs pass through.
func (o servingOpts) apply(spec *switchflow.JobSpec) {
	if spec.Train || spec.Saturated {
		return
	}
	if o.every > 0 {
		spec.ClosedLoop = false
		spec.ServeEvery = o.every
		spec.PoissonArrivals = o.poisson
		if o.poisson {
			spec.ArrivalSeed = o.seed
		}
		spec.MaxBatch = o.maxBatch
		spec.BatchWait = o.batchWait
	}
	spec.SLO = o.slo
}

// trafficOpts hold the -traffic flag family; rps == 0 means the trace
// generator is off and serve jobs keep their own arrival clocks.
type trafficOpts struct {
	rps     float64
	clients int
	seed    int64
	diurnal string
	spikes  string
}

func (o trafficOpts) enabled() bool { return o.rps > 0 }

// request parses the flag strings into the control-plane traffic block.
func (o trafficOpts) request() (control.TrafficRequest, error) {
	req := control.TrafficRequest{RPS: o.rps, Clients: o.clients, Seed: o.seed}
	if o.diurnal != "" {
		periodStr, minStr, ok := strings.Cut(o.diurnal, "/")
		if !ok {
			return req, fmt.Errorf("-diurnal %q: want period/minFraction, e.g. 60s/0.35", o.diurnal)
		}
		period, err := time.ParseDuration(periodStr)
		if err != nil {
			return req, fmt.Errorf("-diurnal %q: bad period: %v", o.diurnal, err)
		}
		min, err := strconv.ParseFloat(minStr, 64)
		if err != nil {
			return req, fmt.Errorf("-diurnal %q: bad min fraction: %v", o.diurnal, err)
		}
		req.DiurnalMillis = int(period / time.Millisecond)
		req.DiurnalMin = min
	}
	for _, one := range strings.Split(o.spikes, ",") {
		one = strings.TrimSpace(one)
		if one == "" {
			continue
		}
		magStr, rest, ok := strings.Cut(one, "@")
		if !ok {
			return req, fmt.Errorf("-spike %q: want mag@start/ramp/hold/decay, e.g. 6@20s/3s/8s/4s", one)
		}
		mag, err := strconv.ParseFloat(magStr, 64)
		if err != nil {
			return req, fmt.Errorf("-spike %q: bad magnitude: %v", one, err)
		}
		parts := strings.Split(rest, "/")
		if len(parts) != 4 {
			return req, fmt.Errorf("-spike %q: want mag@start/ramp/hold/decay", one)
		}
		var ds [4]time.Duration
		for i, p := range parts {
			if ds[i], err = time.ParseDuration(p); err != nil {
				return req, fmt.Errorf("-spike %q: bad duration %q: %v", one, p, err)
			}
		}
		req.Spikes = append(req.Spikes, control.SpikeRequest{
			StartMillis: int(ds[0] / time.Millisecond),
			RampMillis:  int(ds[1] / time.Millisecond),
			HoldMillis:  int(ds[2] / time.Millisecond),
			DecayMillis: int(ds[3] / time.Millisecond),
			Magnitude:   mag,
		})
	}
	return req, nil
}

func run(machineName, schedName, jobsSpec string, window time.Duration,
	faultSeed int64, loseGPU string, ckptEvery time.Duration, serving servingOpts,
	vnodesFlag string, gang int, drainFlag, resizeFlag string, traf trafficOpts) error {
	if traf.enabled() && serving.every > 0 {
		return fmt.Errorf("-traffic and -serve-every are mutually exclusive")
	}
	spec, err := machineSpec(machineName)
	if err != nil {
		return err
	}
	sim := switchflow.NewSimulation(spec)

	policy, err := parsePolicy(schedName)
	if err != nil {
		return err
	}
	opts, err := faultOptions(sim, faultSeed, loseGPU, ckptEvery, window)
	if err != nil {
		return err
	}
	sched, err := sim.NewScheduler(policy, opts...)
	if err != nil {
		return err
	}
	vnodes, err := parseVNodes(vnodesFlag)
	if err != nil {
		return err
	}

	var jobs []*switchflow.Job
	var tenantNames []string
	var tenantJobs []*switchflow.Job
	byName := make(map[string]*switchflow.Job)
	for _, one := range strings.Split(jobsSpec, ",") {
		js, err := parseJob(strings.TrimSpace(one))
		if err != nil {
			return err
		}
		serving.apply(&js)
		isTenant := traf.enabled() && !js.Train && !js.Saturated
		if isTenant {
			// The trace owns the clock: the job idles between Offer calls
			// but keeps the batching/SLO policy from the serving flags.
			js.ClosedLoop = false
			js.ServeEvery = 0
			js.PoissonArrivals = false
			js.RequestDriven = true
			js.MaxBatch = serving.maxBatch
			js.BatchWait = serving.batchWait
		}
		if js.Train && len(vnodes) > 0 {
			// Elastic placement replaces the legacy fields outright: the
			// facade rejects specs that mix the two styles.
			js.GPU, js.FallbackGPUs, js.FallbackCPU = 0, nil, false
			js.Placement = switchflow.Placement{Device: vnodes[0], VNodes: vnodes}
			js.Gang = gang > 0
		} else if js.Train && gang > 0 {
			// A gang of N replicas on consecutive GPUs from the job's @gpu.
			js.FallbackGPUs, js.FallbackCPU = nil, false
			js.Gang, js.Replicas = true, gang
		} else if js.Train || len(opts) > 0 {
			// Training jobs fall back to every other GPU on this machine, in
			// index order, then the CPU. Under fault injection serving jobs
			// get the same GPU fallbacks so SwitchFlow can migrate them off a
			// lost device.
			for i := 0; i < sim.GPUCount(); i++ {
				if i != js.GPU {
					js.FallbackGPUs = append(js.FallbackGPUs, i)
				}
			}
		}
		job, err := sched.AddJob(js)
		if err != nil {
			return err
		}
		jobs = append(jobs, job)
		byName[job.Name()] = job
		if isTenant {
			tenantNames = append(tenantNames, job.Name())
			tenantJobs = append(tenantJobs, job)
		}
	}

	ops, err := parseElasticOps(drainFlag, resizeFlag, byName)
	if err != nil {
		return err
	}
	var offered, admitted int
	if traf.enabled() {
		if len(ops) > 0 {
			return fmt.Errorf("-traffic cannot be combined with -drain or -resize")
		}
		if len(tenantJobs) == 0 {
			return fmt.Errorf("-traffic needs at least one serve job")
		}
		req, err := traf.request()
		if err != nil {
			return err
		}
		profile, err := req.Profile(tenantNames)
		if err != nil {
			return err
		}
		if offered, admitted, err = control.DriveTraffic(sim, tenantJobs, profile, window); err != nil {
			return err
		}
	} else if len(ops) > 0 {
		sf, ok := sched.(*switchflow.SwitchFlowScheduler)
		if !ok {
			return fmt.Errorf("-drain and -resize need the switchflow scheduler, not %s", sched.Name())
		}
		sort.SliceStable(ops, func(i, j int) bool { return ops[i].at < ops[j].at })
		for _, op := range ops {
			if op.at > window {
				return fmt.Errorf("%s at %v is past the -for window %v", op.what, op.at, window)
			}
			sim.RunUntil(op.at)
			if err := op.run(sf); err != nil {
				return fmt.Errorf("%s at %v: %w", op.what, op.at, err)
			}
		}
		sim.RunUntil(window)
	} else {
		sim.RunFor(window)
	}

	fmt.Printf("machine=%s scheduler=%s window=%v\n", spec.Name(), sched.Name(), window)
	if traf.enabled() {
		fmt.Printf("  traffic: rps=%g clients=%d offered=%d admitted=%d shed-at-admission=%d\n",
			traf.rps, traf.clients, offered, admitted, offered-admitted)
	}
	for _, job := range jobs {
		status := "ok"
		if job.Crashed() {
			status = "CRASHED: " + job.Err().Error()
		}
		line := fmt.Sprintf("  %-20s iters=%-6d throughput=%8.1f img/s",
			job.Name(), job.Iterations(), job.Throughput(window))
		if job.Elastic() {
			line += fmt.Sprintf("  vnodes=%d binding=%s restarts=%d",
				job.VNodes(), job.Binding(), job.Restarts())
			if job.Gang() {
				line += " gang"
			}
		}
		if job.Requests() > 0 {
			line += fmt.Sprintf("  p95=%v p99=%v",
				job.P95Latency().Round(time.Millisecond), job.P99Latency().Round(time.Millisecond))
		}
		if st := job.ServingStats(); st.Offered > 0 {
			line += fmt.Sprintf("  served=%d/%d shed=%d", st.Served, st.Offered, st.Shed)
			if st.Batches > 0 && st.Served > st.Batches {
				line += fmt.Sprintf(" mean-batch=%.1f", job.MeanBatch())
			}
			if serving.slo > 0 {
				line += fmt.Sprintf(" slo-attained=%.1f%%", job.SLOAttainment())
			}
		}
		fmt.Printf("%s  [%s]\n", line, status)
	}
	if sf, ok := sched.(*switchflow.SwitchFlowScheduler); ok {
		fmt.Printf("  preemptions=%d migrations=%d grant-p95=%v\n",
			sf.Preemptions(), sf.Migrations(), sf.PreemptionP95().Round(time.Microsecond))
	}
	if st := sched.FaultStats(); st.Injected > 0 {
		fmt.Printf("  faults=%d (lost-gpu=%d transient=%d stall=%d) jobs-lost=%d migrations=%d restarts=%d checkpoints=%d\n",
			st.Injected, st.DeviceLost, st.Transients, st.InputStalls,
			st.JobsLost, st.Migrations, st.Restarts, st.Checkpoints)
	}
	return nil
}

func parsePolicy(name string) (switchflow.Policy, error) {
	switch name {
	case "switchflow":
		return switchflow.PolicySwitchFlow, nil
	case "threaded":
		return switchflow.PolicyThreadedTF, nil
	case "timeslice":
		return switchflow.PolicyTimeSlice, nil
	case "mps":
		return switchflow.PolicyMPS, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q", name)
	}
}

// faultOptions builds the NewScheduler options for the fault flags; nil
// when no fault injection was requested.
func faultOptions(sim *switchflow.Simulation, seed int64, loseGPU string,
	ckptEvery, window time.Duration) ([]switchflow.Option, error) {
	var plan *switchflow.FaultPlan
	if seed != 0 {
		plan = switchflow.RandomFaultPlan(seed, window, sim.GPUCount())
	}
	if loseGPU != "" {
		gpuStr, atStr, ok := strings.Cut(loseGPU, "@")
		if !ok {
			return nil, fmt.Errorf("-lose-gpu %q: want gpu@time, e.g. 0@10s", loseGPU)
		}
		gpu, err := strconv.Atoi(gpuStr)
		if err != nil {
			return nil, fmt.Errorf("-lose-gpu %q: bad gpu index", loseGPU)
		}
		at, err := time.ParseDuration(atStr)
		if err != nil {
			return nil, fmt.Errorf("-lose-gpu %q: bad time: %v", loseGPU, err)
		}
		if plan == nil {
			plan = switchflow.NewFaultPlan()
		}
		plan.LoseGPU(at, gpu)
	}
	if plan == nil {
		return nil, nil
	}
	opts := []switchflow.Option{switchflow.WithFaultPlan(plan)}
	if ckptEvery > 0 {
		opts = append(opts, switchflow.WithCheckpointEvery(ckptEvery))
	}
	return opts, nil
}

// parseVNodes parses the -vnodes GPU list ("0,1" → [0, 1]).
func parseVNodes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var gpus []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-vnodes %q: bad gpu index %q", s, part)
		}
		gpus = append(gpus, n)
	}
	return gpus, nil
}

// elasticOp is a scheduled mid-run mutation: the engine runs to at, the
// op fires, and the run continues.
type elasticOp struct {
	at   time.Duration
	what string
	run  func(*switchflow.SwitchFlowScheduler) error
}

// parseElasticOps parses -drain ("gpu@time,...") and -resize
// ("job=vnodes@time,...") into scheduled operations.
func parseElasticOps(drainFlag, resizeFlag string, byName map[string]*switchflow.Job) ([]elasticOp, error) {
	var ops []elasticOp
	if drainFlag != "" {
		for _, one := range strings.Split(drainFlag, ",") {
			gpuStr, atStr, ok := strings.Cut(strings.TrimSpace(one), "@")
			if !ok {
				return nil, fmt.Errorf("-drain %q: want gpu@time, e.g. 0@20s", one)
			}
			gpu, err := strconv.Atoi(gpuStr)
			if err != nil {
				return nil, fmt.Errorf("-drain %q: bad gpu index", one)
			}
			at, err := time.ParseDuration(atStr)
			if err != nil {
				return nil, fmt.Errorf("-drain %q: bad time: %v", one, err)
			}
			ops = append(ops, elasticOp{
				at:   at,
				what: fmt.Sprintf("drain gpu:%d", gpu),
				run:  func(sf *switchflow.SwitchFlowScheduler) error { return sf.Drain(gpu) },
			})
		}
	}
	if resizeFlag != "" {
		for _, one := range strings.Split(resizeFlag, ",") {
			name, rest, ok := strings.Cut(strings.TrimSpace(one), "=")
			if !ok {
				return nil, fmt.Errorf("-resize %q: want job=vnodes@time, e.g. train-ResNet50=2@10s", one)
			}
			nStr, atStr, ok := strings.Cut(rest, "@")
			if !ok {
				return nil, fmt.Errorf("-resize %q: want job=vnodes@time", one)
			}
			n, err := strconv.Atoi(nStr)
			if err != nil {
				return nil, fmt.Errorf("-resize %q: bad vnode count", one)
			}
			at, err := time.ParseDuration(atStr)
			if err != nil {
				return nil, fmt.Errorf("-resize %q: bad time: %v", one, err)
			}
			job, ok := byName[name]
			if !ok {
				return nil, fmt.Errorf("-resize %q: no job named %q", one, name)
			}
			ops = append(ops, elasticOp{
				at:   at,
				what: fmt.Sprintf("resize %s to %d", name, n),
				run: func(sf *switchflow.SwitchFlowScheduler) error {
					if n > job.VNodes() {
						return sf.Grow(job, n)
					}
					if n < job.VNodes() {
						return sf.Shrink(job, n)
					}
					return nil
				},
			})
		}
	}
	return ops, nil
}

func machineSpec(name string) (switchflow.MachineSpec, error) {
	switch strings.ToLower(name) {
	case "v100":
		return switchflow.V100Server(), nil
	case "nvlink":
		return switchflow.NVLinkV100Server(), nil
	case "2gpu":
		return switchflow.TwoGPUServer(), nil
	case "tx2":
		return switchflow.JetsonTX2(), nil
	default:
		return switchflow.SingleGPU(name)
	}
}

// parseJob parses kind:model:batch[:prio][@gpu].
func parseJob(s string) (switchflow.JobSpec, error) {
	var spec switchflow.JobSpec
	gpu := 0
	if at := strings.LastIndex(s, "@"); at >= 0 {
		n, err := strconv.Atoi(s[at+1:])
		if err != nil {
			return spec, fmt.Errorf("job %q: bad gpu index", s)
		}
		gpu = n
		s = s[:at]
	}
	parts := strings.Split(s, ":")
	if len(parts) < 3 {
		return spec, fmt.Errorf("job %q: want kind:model:batch[:prio]", s)
	}
	batch, err := strconv.Atoi(parts[2])
	if err != nil {
		return spec, fmt.Errorf("job %q: bad batch", s)
	}
	prio := 0
	if len(parts) > 3 {
		if prio, err = strconv.Atoi(parts[3]); err != nil {
			return spec, fmt.Errorf("job %q: bad priority", s)
		}
	}
	spec = switchflow.JobSpec{
		Name:     fmt.Sprintf("%s-%s", parts[0], parts[1]),
		Model:    parts[1],
		Batch:    batch,
		Priority: prio,
		GPU:      gpu,
	}
	switch parts[0] {
	case "train":
		spec.Train = true
		spec.FallbackCPU = true
	case "serve":
		spec.ClosedLoop = true
	case "infer":
		spec.Saturated = true
	default:
		return spec, fmt.Errorf("job %q: unknown kind %q", s, parts[0])
	}
	return spec, nil
}

// runScenario executes a declarative JSON scenario (see docs/scenarios).
func runScenario(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc, err := control.ParseScenario(f)
	if err != nil {
		return err
	}
	res, err := control.RunScenario(sc)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}
