// Command swserved serves a SwitchFlow simulation over HTTP — the
// model-submission service of §4's future-work note, in the spirit of
// TF Serving. Clients submit jobs, advance virtual time, and read stats.
//
//	swserved -addr localhost:8754 -machine v100
//
//	curl -X POST localhost:8754/v1/jobs -d '{"name":"train","model":"VGG16","batch":32,"train":true,"priority":1}'
//	curl -X POST localhost:8754/v1/advance -d '{"forMillis":5000}'
//	curl localhost:8754/v1/status
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"switchflow/internal/control"
)

func main() {
	var (
		addr    = flag.String("addr", "localhost:8754", "listen address")
		machine = flag.String("machine", "v100", "machine: v100, 2gpu, tx2, or a GPU name")
	)
	flag.Parse()
	if err := run(*addr, *machine); err != nil {
		fmt.Fprintln(os.Stderr, "swserved:", err)
		os.Exit(1)
	}
}

func run(addr, machine string) error {
	server, err := control.NewServer(machine)
	if err != nil {
		return err
	}
	log.Printf("swserved: machine %q listening on %s", machine, addr)
	// Header and idle timeouts bound how long a slow or stalled client can
	// pin a connection; without them every accepted conn is held forever.
	srv := &http.Server{
		Addr:              addr,
		Handler:           server.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return srv.ListenAndServe()
}
