// Command swtrace emits a Figure 2 style kernel timeline: two models
// co-running on one GPU under a chosen scheduler, as ASCII art, JSON, an
// nvprof-style profile, or a Chrome trace-event file for Perfetto.
//
// Usage:
//
//	swtrace -models ResNet50,ResNet50 -gpu V100 -sched threaded -for 5s
//	swtrace -format json -o timeline.json
//	swtrace -sched switchflow -format chrome -o trace.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/obs"
	"switchflow/internal/sim"
	"switchflow/internal/trace"
	"switchflow/internal/workload"
)

func main() {
	var (
		modelsFlag = flag.String("models", "ResNet50,ResNet50", "comma-separated training models to co-run")
		gpuFlag    = flag.String("gpu", "V100", "GPU model: V100, RTX 2080 Ti, GTX 1080 Ti, Jetson TX2")
		schedFlag  = flag.String("sched", "threaded", "scheduler: threaded or switchflow")
		window     = flag.Duration("for", 5*time.Second, "virtual time to trace")
		batch      = flag.Int("batch", 16, "training batch size")
		format     = flag.String("format", "ascii", "output: ascii, json, profile (nvprof-style kernel stats), or chrome (trace-event JSON for Perfetto)")
		width      = flag.Int("width", 100, "ascii timeline width")
		prioFlag   = flag.String("prio", "", "comma-separated job priorities; default is the job index, so later jobs outrank earlier ones under switchflow")
		outFlag    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*modelsFlag, *gpuFlag, *schedFlag, *format, *prioFlag, *outFlag, *window, *batch, *width); err != nil {
		fmt.Fprintln(os.Stderr, "swtrace:", err)
		os.Exit(1)
	}
}

func run(modelList, gpuName, sched, format, prios, outPath string, window time.Duration, batch, width int) error {
	eng := sim.NewEngine()
	machine, err := machineFor(eng, gpuName)
	if err != nil {
		return err
	}
	tl := &trace.Timeline{}
	tl.AttachBus(machine.Bus())
	// The chrome export wants scheduler decisions alongside kernel spans,
	// so it records the full spine rather than just the timeline.
	rec := obs.NewRecorder(0)
	if format == "chrome" {
		machine.Bus().Subscribe(rec,
			obs.KindKernelSpan, obs.KindPreempt, obs.KindResume, obs.KindMigrate,
			obs.KindBatchFuse, obs.KindAdmit, obs.KindShed, obs.KindServe,
			obs.KindFaultInject, obs.KindJobLost, obs.KindCheckpoint,
			obs.KindRestore, obs.KindPlace)
	}

	names := strings.Split(modelList, ",")
	priorities, err := parsePriorities(prios, len(names))
	if err != nil {
		return err
	}
	cfgs := make([]workload.Config, 0, len(names))
	for i, name := range names {
		spec, err := models.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		cfgs = append(cfgs, workload.Config{
			Name:     fmt.Sprintf("%s-%d", spec.Name, i),
			Model:    spec,
			Batch:    batch,
			Kind:     workload.KindTraining,
			Priority: priorities[i],
			Device:   device.GPUID(0),
		})
	}

	switch sched {
	case "threaded":
		s := baseline.NewThreadedTF(eng, machine)
		for _, cfg := range cfgs {
			if _, err := s.AddJob(cfg); err != nil {
				return err
			}
		}
	case "switchflow":
		m := core.NewManager(eng, machine, core.Options{})
		for _, cfg := range cfgs {
			if _, err := m.AddJob(cfg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown scheduler %q", sched)
	}

	eng.RunUntil(window)

	out := io.Writer(os.Stdout)
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	switch format {
	case "json":
		return tl.WriteJSON(out)
	case "chrome":
		return obs.WriteChrome(out, rec.Events())
	case "profile":
		fmt.Fprintf(out, "kernel profile on %s under %s over %v:\n", gpuName, sched, window)
		return tl.WriteProfile(out, 25)
	case "ascii":
		bucket := window / time.Duration(width)
		fmt.Fprintf(out, "kernel timeline on %s under %s (1 col = %v):\n", gpuName, sched, bucket)
		return tl.RenderASCII(out, bucket, width)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// parsePriorities expands the -prio flag to one priority per job. The
// default ladder gives each job its index, so with -sched switchflow the
// last-listed model outranks the others and the trace shows preemption.
func parsePriorities(flagVal string, n int) ([]int, error) {
	out := make([]int, n)
	if flagVal == "" {
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	parts := strings.Split(flagVal, ",")
	if len(parts) != n {
		return nil, fmt.Errorf("-prio lists %d priorities for %d models", len(parts), n)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad priority %q: %v", p, err)
		}
		out[i] = v
	}
	return out, nil
}

func machineFor(eng *sim.Engine, gpu string) (*device.Machine, error) {
	cpu := device.ClassXeonDual
	var class device.GPUClass
	switch gpu {
	case "V100":
		class = device.ClassV100
	case "RTX 2080 Ti":
		class = device.ClassRTX2080Ti
	case "GTX 1080 Ti":
		class = device.ClassGTX1080Ti
	case "Jetson TX2":
		class = device.ClassJetsonTX2
		cpu = device.ClassCortexA57
	default:
		return nil, fmt.Errorf("unknown GPU %q", gpu)
	}
	return device.NewMachine(eng, cpu, class), nil
}
