// Command swtrace emits a Figure 2 style kernel timeline: two models
// co-running on one GPU under a chosen scheduler, as ASCII art or JSON.
//
// Usage:
//
//	swtrace -models ResNet50,ResNet50 -gpu V100 -sched threaded -for 5s
//	swtrace -format json > timeline.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"switchflow/internal/baseline"
	"switchflow/internal/core"
	"switchflow/internal/device"
	"switchflow/internal/models"
	"switchflow/internal/sim"
	"switchflow/internal/trace"
	"switchflow/internal/workload"
)

func main() {
	var (
		modelsFlag = flag.String("models", "ResNet50,ResNet50", "comma-separated training models to co-run")
		gpuFlag    = flag.String("gpu", "V100", "GPU model: V100, RTX 2080 Ti, GTX 1080 Ti, Jetson TX2")
		schedFlag  = flag.String("sched", "threaded", "scheduler: threaded or switchflow")
		window     = flag.Duration("for", 5*time.Second, "virtual time to trace")
		batch      = flag.Int("batch", 16, "training batch size")
		format     = flag.String("format", "ascii", "output: ascii, json, or profile (nvprof-style kernel stats)")
		width      = flag.Int("width", 100, "ascii timeline width")
	)
	flag.Parse()
	if err := run(*modelsFlag, *gpuFlag, *schedFlag, *format, *window, *batch, *width); err != nil {
		fmt.Fprintln(os.Stderr, "swtrace:", err)
		os.Exit(1)
	}
}

func run(modelList, gpuName, sched, format string, window time.Duration, batch, width int) error {
	eng := sim.NewEngine()
	machine, err := machineFor(eng, gpuName)
	if err != nil {
		return err
	}
	tl := &trace.Timeline{}
	tl.Attach(machine.GPU(0))

	names := strings.Split(modelList, ",")
	cfgs := make([]workload.Config, 0, len(names))
	for i, name := range names {
		spec, err := models.ByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		cfgs = append(cfgs, workload.Config{
			Name:   fmt.Sprintf("%s-%d", spec.Name, i),
			Model:  spec,
			Batch:  batch,
			Kind:   workload.KindTraining,
			Device: device.GPUID(0),
		})
	}

	switch sched {
	case "threaded":
		s := baseline.NewThreadedTF(eng, machine)
		for _, cfg := range cfgs {
			if _, err := s.AddJob(cfg); err != nil {
				return err
			}
		}
	case "switchflow":
		m := core.NewManager(eng, machine, core.Options{})
		for _, cfg := range cfgs {
			if _, err := m.AddJob(cfg); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown scheduler %q", sched)
	}

	eng.RunUntil(window)

	switch format {
	case "json":
		return tl.WriteJSON(os.Stdout)
	case "profile":
		fmt.Printf("kernel profile on %s under %s over %v:\n", gpuName, sched, window)
		return tl.WriteProfile(os.Stdout, 25)
	case "ascii":
		bucket := window / time.Duration(width)
		fmt.Printf("kernel timeline on %s under %s (1 col = %v):\n", gpuName, sched, bucket)
		return tl.RenderASCII(os.Stdout, bucket, width)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func machineFor(eng *sim.Engine, gpu string) (*device.Machine, error) {
	cpu := device.ClassXeonDual
	var class device.GPUClass
	switch gpu {
	case "V100":
		class = device.ClassV100
	case "RTX 2080 Ti":
		class = device.ClassRTX2080Ti
	case "GTX 1080 Ti":
		class = device.ClassGTX1080Ti
	case "Jetson TX2":
		class = device.ClassJetsonTX2
		cpu = device.ClassCortexA57
	default:
		return nil, fmt.Errorf("unknown GPU %q", gpu)
	}
	return device.NewMachine(eng, cpu, class), nil
}
