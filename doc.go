// Package switchflow is a Go reproduction of "SwitchFlow: Preemptive
// Multitasking for Deep Learning" (Wu et al., Middleware'21).
//
// It provides a complete, self-contained substrate — a deterministic
// discrete-event simulator of GPUs/CPUs, a TensorFlow-style static-graph
// execution engine (sessions, executors, thread pools, work stealing,
// compute streams), and a zoo of the paper's twelve DNN models — plus the
// SwitchFlow scheduler itself and the paper's three baselines
// (multi-threaded TF, Gandiva-style session time slicing, NVIDIA MPS).
//
// The package at the repository root is the public facade: create a
// Simulation over one of the paper's machines, pick a scheduler, add
// jobs, and advance virtual time.
//
//	sim := switchflow.NewSimulation(switchflow.V100Server())
//	sched, _ := sim.NewSwitchFlowScheduler()
//	train, _ := sched.AddJob(switchflow.JobSpec{
//		Name: "train", Model: "VGG16", Batch: 32, Train: true, Priority: 1,
//	})
//	serve, _ := sched.AddJob(switchflow.JobSpec{
//		Name: "serve", Model: "ResNet50", Batch: 1, Priority: 2,
//		ClosedLoop: true,
//	})
//	sim.RunFor(30 * time.Second)
//	fmt.Println(train.Iterations(), serve.P95Latency())
//
// Every figure and table of the paper's evaluation can be regenerated with
// cmd/swbench; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for paper-vs-measured results.
package switchflow
