package switchflow_test

import (
	"errors"
	"testing"
	"time"

	"switchflow"
	"switchflow/internal/obs"
)

// TestPublicAPIGangJob drives a gang through the facade: a two-replica
// DDP job on the NVLink testbed trains, reports Gang(), and pays a
// priced all-reduce barrier every step.
func TestPublicAPIGangJob(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.NVLinkV100Server())
	var rec obs.Recorder
	sim.EventBus().Subscribe(&rec, obs.KindAllReduce)
	sched := newSwitchFlow(t, sim)
	job, err := sched.AddJob(switchflow.JobSpec{
		Name: "ddp", Model: "ResNet50", Batch: 32, Train: true, Priority: 1,
		Gang: true, Replicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !job.Gang() {
		t.Fatal("Gang() = false for a gang spec")
	}
	if job.VNodes() != 2 {
		t.Fatalf("gang materialized %d vnodes, want 2", job.VNodes())
	}
	sim.RunFor(3 * time.Second)
	if job.Crashed() {
		t.Fatalf("gang crashed: %v", job.Err())
	}
	if job.Iterations() == 0 {
		t.Fatal("gang made no progress")
	}
	syncs := rec.Events()
	if len(syncs) < job.Iterations() {
		t.Fatalf("%d AllReduce events for %d steps; every step must sync",
			len(syncs), job.Iterations())
	}
	for _, e := range syncs {
		if e.Count != 2 || e.Dur <= 0 {
			t.Fatalf("AllReduce event Count=%d Dur=%v, want width 2 and a priced sync", e.Count, e.Dur)
		}
	}

	// A plain elastic job is not a gang.
	solo, err := sched.AddJob(switchflow.JobSpec{
		Name: "solo", Model: "MobileNetV2", Batch: 8, Train: true, Priority: 1,
		Placement: switchflow.Placement{VNodes: []int{2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Gang() {
		t.Fatal("Gang() = true for a non-gang elastic job")
	}
}

// TestPublicAPIGangValidation pins the gang surface's spec errors.
func TestPublicAPIGangValidation(t *testing.T) {
	base := switchflow.JobSpec{
		Name: "g", Model: "ResNet50", Batch: 8, Train: true, Gang: true, Replicas: 2,
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("good gang spec rejected: %v", err)
	}
	explicit := base
	explicit.Replicas = 0
	explicit.Placement = switchflow.Placement{VNodes: []int{2, 3}}
	if err := explicit.Validate(); err != nil {
		t.Fatalf("gang with explicit VNodes rejected: %v", err)
	}

	bad := []struct {
		name   string
		mutate func(*switchflow.JobSpec)
	}{
		{"gang must train", func(s *switchflow.JobSpec) {
			s.Train = false
			s.Replicas = 2
			s.ClosedLoop = true
		}},
		{"gang needs width two", func(s *switchflow.JobSpec) { s.Replicas = 1 }},
		{"gang with no width", func(s *switchflow.JobSpec) { s.Replicas = 0 }},
		{"negative replicas", func(s *switchflow.JobSpec) { s.Replicas = -1 }},
		{"replicas without gang", func(s *switchflow.JobSpec) { s.Gang = false }},
		{"replicas conflict with vnodes", func(s *switchflow.JobSpec) {
			s.Replicas = 3
			s.Placement = switchflow.Placement{VNodes: []int{0, 1}}
		}},
		{"duplicate replica GPUs", func(s *switchflow.JobSpec) {
			s.Replicas = 0
			s.Placement = switchflow.Placement{VNodes: []int{1, 1}}
		}},
	}
	for _, tt := range bad {
		t.Run(tt.name, func(t *testing.T) {
			spec := base
			tt.mutate(&spec)
			err := spec.Validate()
			if err == nil {
				t.Fatalf("spec %+v accepted", spec)
			}
			if !errors.Is(err, switchflow.ErrInvalidJobSpec) {
				t.Fatalf("error %v does not wrap ErrInvalidJobSpec", err)
			}
		})
	}
}

// Gangs materialize virtual nodes, so every baseline rejects them with
// the same ErrNotElastic contract as hand-written elastic specs.
func TestGangRequiresSwitchFlow(t *testing.T) {
	sim := switchflow.NewSimulation(switchflow.NVLinkV100Server())
	sched := newPolicy(t, sim, switchflow.PolicyTimeSlice)
	_, err := sched.AddJob(switchflow.JobSpec{
		Name: "g", Model: "ResNet50", Batch: 8, Train: true, Gang: true, Replicas: 2,
	})
	if !errors.Is(err, switchflow.ErrNotElastic) {
		t.Fatalf("baseline admitted a gang (err=%v), want ErrNotElastic", err)
	}
}
