# SwitchFlow reproduction — common targets.

# Several targets pipe `go test` through tee; without pipefail the pipe's
# exit status is tee's, and test failures silently pass CI.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# Pinned external tool versions — the single source of truth, reused by
# the CI lint job. Bump here and CI follows. (These tools are not module
# dependencies: the build environment may be offline, so `make lint`
# skips any that are not already installed.)
STATICCHECK_VERSION := 2024.1.1
GOVULNCHECK_VERSION := v1.1.3

.PHONY: all build vet lint test race bench bench-json bench-trajectory \
	bench-smoke fleet-smoke gang-smoke results examples trace install-lint-tools

# The committed engine-performance baseline. Bump the number when a PR
# intentionally moves the trajectory; `make bench-trajectory` regenerates
# it and `make bench-smoke` (the CI gate) compares a smoke-sized run's
# machine-portable ratios against it.
BENCH_BASELINE := BENCH_010.json

all: build vet lint test race

build:
	go build ./...

vet:
	go vet ./...

# Static analysis: go vet, then swlint (the project's own determinism and
# concurrency checks — see docs/architecture.md "Determinism & concurrency
# invariants"), then staticcheck and govulncheck when installed. swlint is
# plain module code, so it always runs, offline included; the external
# tools are best-effort locally and mandatory in CI.
lint: vet
	go run ./cmd/swlint ./...
	@if command -v staticcheck >/dev/null; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (make install-lint-tools)"; \
	fi
	@if command -v govulncheck >/dev/null; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (make install-lint-tools)"; \
	fi

# Install the pinned external lint tools (requires network access).
install-lint-tools:
	go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

test:
	go test ./... 2>&1 | tee test_output.txt

# Full suite under the race detector: the parallel experiment harness
# runs cells on concurrent goroutines, so every package must be
# race-clean.
race:
	go test -race ./... 2>&1 | tee race_output.txt

bench:
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Machine-readable benchmark output (one JSON object per test event) for
# tracking the performance trajectory across commits.
bench-json:
	go test -json -run='^$$' -bench=. -benchmem ./... | tee bench_output.json

# Regenerate the committed engine-performance baseline: full-size micro
# (wheel vs heap at depths 256/4k/64k) and macro (serial vs sharded
# fleet) runs, normalized into $(BENCH_BASELINE). Run on a quiet machine.
bench-trajectory:
	go run ./cmd/swbench -exp engine -bench-label $(basename $(BENCH_BASELINE)) -bench-out $(BENCH_BASELINE)

# CI regression gate: smoke-sized engine bench, compared against the
# committed baseline on machine-portable speedup ratios (>25% regression
# fails). Writes bench_smoke.json for the workflow artifact upload.
bench-smoke:
	go run ./cmd/swbench -exp engine -bench-smoke -bench-label smoke \
		-bench-out bench_smoke.json -bench-check $(BENCH_BASELINE)

# CI smoke for the million-user fleet scenario, shrunk to a 30s window
# and 100k clients (~10s wall serial): the three routing arms must be
# byte-identical serial vs parallel, the autoscaled arms must actually
# scale out on the flash crowd and back in on the trough, and they must
# shed less than the static arm.
fleet-smoke:
	go run ./cmd/swbench -exp fleet -fleet-window 30s -clients 100000 -parallel 1 > fleet_serial.txt
	go run ./cmd/swbench -exp fleet -fleet-window 30s -clients 100000 -parallel 8 > fleet_parallel.txt
	cmp fleet_serial.txt fleet_parallel.txt
	awk 'NR > 3 { rows++; \
		if ($$2 == "false") staticShed = $$6; \
		if ($$2 == "true" && ($$9 == 0 || $$10 == 0 || $$11 == 0 || $$12 == 0 || $$6 >= staticShed)) exit 1 } \
		END { exit rows != 3 }' fleet_serial.txt
	@echo "fleet-smoke OK"

# CI smoke for gang-scheduled data-parallel training: the five arms must
# be byte-identical serial vs parallel, no arm may leave a partial gang
# or resume a straggler replica, the contended-gang arm must place two
# whole gangs and queue the third whole, the preempt arm must suspend and
# resume whole gangs, and the NVLink ring must out-iterate the
# island-straddling one.
gang-smoke:
	go run ./cmd/swbench -exp gang -parallel 1 > gang_serial.txt
	go run ./cmd/swbench -exp gang -parallel 8 > gang_parallel.txt
	cmp gang_serial.txt gang_parallel.txt
	awk 'NR > 3 { rows++; \
		if ($$10 != 0 || $$8 != 0) exit 1; \
		if ($$1 == "gang" && ($$5 != 2 || $$9 != 1)) exit 1; \
		if ($$1 == "preempt" && ($$6 == 0 || $$7 == 0)) exit 1; \
		if ($$1 == "nvlink") nv = $$2; \
		if ($$1 == "straddle" && $$2 >= nv) exit 1 } \
		END { exit rows != 5 }' gang_serial.txt
	@echo "gang-smoke OK"

# Chrome trace-event artifact from the canned two-ResNet50 co-run on a
# V100 (the switchflow cell). Open trace.json in https://ui.perfetto.dev.
trace:
	go run ./cmd/swbench -trace trace.json

# Regenerate every table and figure of the paper (and the extensions).
results:
	go run ./cmd/swbench -exp all -iters 200 -requests 200 | tee docs/results-full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/inference_collocation
	go run ./examples/multitask_reuse
	go run ./examples/preemption_migration
	go run ./examples/listing1
	go run ./examples/hyperparam_tuning
