# SwitchFlow reproduction — common targets.

.PHONY: all build vet test bench results examples

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./... 2>&1 | tee test_output.txt

bench:
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Regenerate every table and figure of the paper (and the extensions).
results:
	go run ./cmd/swbench -exp all -iters 200 -requests 200 | tee docs/results-full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/inference_collocation
	go run ./examples/multitask_reuse
	go run ./examples/preemption_migration
	go run ./examples/listing1
	go run ./examples/hyperparam_tuning
