# SwitchFlow reproduction — common targets.

# Several targets pipe `go test` through tee; without pipefail the pipe's
# exit status is tee's, and test failures silently pass CI.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build vet test race bench bench-json results examples

all: build vet test race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./... 2>&1 | tee test_output.txt

# Full suite under the race detector: the parallel experiment harness
# runs cells on concurrent goroutines, so every package must be
# race-clean.
race:
	go test -race ./... 2>&1 | tee race_output.txt

bench:
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# Machine-readable benchmark output (one JSON object per test event) for
# tracking the performance trajectory across commits.
bench-json:
	go test -json -run='^$$' -bench=. -benchmem ./... | tee bench_output.json

# Regenerate every table and figure of the paper (and the extensions).
results:
	go run ./cmd/swbench -exp all -iters 200 -requests 200 | tee docs/results-full.txt

examples:
	go run ./examples/quickstart
	go run ./examples/inference_collocation
	go run ./examples/multitask_reuse
	go run ./examples/preemption_migration
	go run ./examples/listing1
	go run ./examples/hyperparam_tuning
