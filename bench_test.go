package switchflow_test

// One benchmark per table and figure of the paper's evaluation (§5). Each
// runs a reduced version of the corresponding experiment harness and
// reports paper-relevant quantities as custom metrics, so
// `go test -bench=. -benchmem` regenerates the whole evaluation in
// miniature. cmd/swbench produces the full-size tables.

import (
	"testing"
	"time"

	"switchflow/internal/experiments"
)

func BenchmarkTable1StateTransfer(b *testing.B) {
	var lastMS float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		lastMS = rows[0].TransferMS
	}
	b.ReportMetric(lastMS, "resnet50-ms")
}

func BenchmarkFigure2Timeline(b *testing.B) {
	var res experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure2(3 * time.Second)
	}
	b.ReportMetric(res.SoloImgPerSec, "solo-img/s")
	b.ReportMetric(res.CoRunImgPerSec[0], "corun-img/s")
	b.ReportMetric(res.OverlapFraction*100, "overlap-%")
}

func BenchmarkFigure3PipelineBreakdown(b *testing.B) {
	var rows []experiments.Figure3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure3(5)
	}
	var maxIdle float64
	for _, r := range rows {
		if r.IdleFrac > maxIdle {
			maxIdle = r.IdleFrac
		}
	}
	b.ReportMetric(float64(len(rows)), "cells")
	b.ReportMetric(maxIdle*100, "max-idle-%")
}

func BenchmarkFigure6TailLatency(b *testing.B) {
	var row experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		row = experiments.Figure6Cell("VGG16", "ResNet50", 30)
	}
	b.ReportMetric(row.TFP95MS, "tf-p95-ms")
	b.ReportMetric(row.SFP95MS, "sf-p95-ms")
	b.ReportMetric(row.Speedup, "speedup-x")
}

func BenchmarkFigure6NMT(b *testing.B) {
	var row experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		row = experiments.Figure6Cell("VGG16", "NMT", 20)
	}
	b.ReportMetric(row.Speedup, "speedup-x")
}

func BenchmarkFigure7Throughput(b *testing.B) {
	var threaded, sf experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		threaded = experiments.Figure7Threaded("a", "GTX 1080 Ti", "ResNet50", "VGG16")
		sf = experiments.Figure7SwitchFlow("e", nil, "ResNet50", "VGG16")
	}
	b.ReportMetric(threaded.ModelCoRun, "threaded-corun-img/s")
	b.ReportMetric(sf.ModelCoRun, "sf-high-img/s")
	b.ReportMetric(sf.BackgroundCoRun, "sf-low-img/s")
}

func BenchmarkFigure8InputReuseIdentical(b *testing.B) {
	var row experiments.Figure8Row
	for i := 0; i < b.N; i++ {
		row = experiments.Figure8Cell("V100", "ResNet50", false, 128, 10)
	}
	b.ReportMetric(row.ImprovePct, "improve-%")
}

func BenchmarkFigure9InputReuseMixed(b *testing.B) {
	var row experiments.Figure9Row
	for i := 0; i < b.N; i++ {
		row = experiments.Figure9Cell([]string{"ResNet50", "VGG16", "InceptionV3"}, 64, 8)
	}
	b.ReportMetric(row.ImprovePct, "improve-%")
}

func BenchmarkFigure10Interleaving(b *testing.B) {
	var row experiments.Figure10Row
	for i := 0; i < b.N; i++ {
		row = experiments.Figure10Cell("a", "VGG16", false, "MobileNetV2", 8)
	}
	b.ReportMetric(row.ImprovePct, "improve-%")
}

func BenchmarkPreemptionOverhead(b *testing.B) {
	var res experiments.PreemptionResult
	for i := 0; i < b.N; i++ {
		res = experiments.PreemptionOverhead("ResNet50", 20)
	}
	b.ReportMetric(res.P95GrantMS, "grant-p95-ms")
	b.ReportMetric(res.MaxGrantMS, "grant-max-ms")
}

func BenchmarkAblationInvariants(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Ablation(15)
	}
	for _, r := range rows {
		if r.Variant == "full" {
			b.ReportMetric(r.ServeP95MS, "full-p95-ms")
		}
		if r.Variant == "no-gpu-exclusive" {
			b.ReportMetric(r.ServeP95MS, "noexcl-p95-ms")
		}
	}
}

func BenchmarkAblationMigration(b *testing.B) {
	var rows []experiments.AblationMigrationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.AblationMigration()
	}
	for _, r := range rows {
		if r.Variant == "async-transfer" {
			b.ReportMetric(r.HighFirstStepSec*1e3, "async-first-ms")
		} else {
			b.ReportMetric(r.HighFirstStepSec*1e3, "sync-first-ms")
		}
	}
}

func BenchmarkGandivaComparison(b *testing.B) {
	var row experiments.GandivaRow
	for i := 0; i < b.N; i++ {
		row = experiments.GandivaCell("ResNet50", 15)
	}
	b.ReportMetric(row.SFP95MS, "sf-p95-ms")
	b.ReportMetric(row.CkptP95MS, "ckpt-p95-ms")
}

func BenchmarkLoadSweepPoint(b *testing.B) {
	var row experiments.LoadRow
	for i := 0; i < b.N; i++ {
		row = experiments.LoadPoint(10, 25)
	}
	b.ReportMetric(row.TFP95MS, "tf-p95-ms")
	b.ReportMetric(row.SFP95MS, "sf-p95-ms")
}

func BenchmarkEagerVsStatic(b *testing.B) {
	var row experiments.EagerRow
	for i := 0; i < b.N; i++ {
		row = experiments.EagerCell("DenseNet121", 32)
	}
	b.ReportMetric(row.StaticSpeedX, "static-x")
	b.ReportMetric(row.FusedSpeedX, "fused-x")
}

func BenchmarkFleetServing(b *testing.B) {
	var rows []experiments.FleetRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Fleet(15*time.Second, 100_000)
	}
	for _, r := range rows {
		if r.Autoscaled {
			b.ReportMetric(r.GoodputPS, r.Strategy+"-goodput/s")
		}
	}
}
